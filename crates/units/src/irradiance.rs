//! Solar irradiance.

quantity!(
    /// Solar irradiance in watts per square metre.
    ///
    /// The paper occasionally typesets irradiance as "W/cm²"; those figures
    /// are physically W/m² (a 1000 W/cm² flux is ten thousand suns) and this
    /// crate uses W/m² everywhere.
    ///
    /// ```
    /// use pv_units::Irradiance;
    /// let stc = Irradiance::STC;
    /// assert_eq!(stc.as_w_per_m2(), 1000.0);
    /// let half = stc * 0.5;
    /// assert_eq!(half.as_w_per_m2(), 500.0);
    /// ```
    Irradiance,
    "W/m^2"
);

impl Irradiance {
    /// Standard Test Condition irradiance: 1000 W/m².
    pub const STC: Self = Self::new(1000.0);

    /// Builds an irradiance from a value in W/m².
    #[inline]
    #[must_use]
    pub const fn from_w_per_m2(value: f64) -> Self {
        Self::new(value)
    }

    /// Returns the irradiance in W/m².
    #[inline]
    #[must_use]
    pub const fn as_w_per_m2(self) -> f64 {
        self.value()
    }

    /// Fraction of STC irradiance (dimensionless), used by normalized
    /// datasheet curves.
    #[inline]
    #[must_use]
    pub fn stc_fraction(self) -> f64 {
        self.value() / Self::STC.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stc_fraction_is_one_at_stc() {
        assert_eq!(Irradiance::STC.stc_fraction(), 1.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Irradiance::from_w_per_m2(600.0);
        let b = Irradiance::from_w_per_m2(400.0);
        assert_eq!((a + b).as_w_per_m2(), 1000.0);
        assert_eq!((a - b).as_w_per_m2(), 200.0);
        assert_eq!((a * 2.0).as_w_per_m2(), 1200.0);
        assert_eq!(a / b, 1.5);
    }

    #[test]
    fn display_includes_unit() {
        let g = Irradiance::from_w_per_m2(812.5);
        assert_eq!(format!("{g:.1}"), "812.5 W/m^2");
        assert_eq!(format!("{g:?}"), "Irradiance(812.5 W/m^2)");
    }

    #[test]
    fn sum_of_iterator() {
        let total: Irradiance = [100.0, 200.0, 300.0]
            .into_iter()
            .map(Irradiance::from_w_per_m2)
            .sum();
        assert_eq!(total.as_w_per_m2(), 600.0);
    }
}
