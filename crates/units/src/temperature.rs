//! Temperatures.

quantity!(
    /// Temperature in degrees Celsius.
    ///
    /// Used both for ambient air temperature and for the corrected module
    /// temperature `Tact = T + k·G` of the paper's power model.
    ///
    /// ```
    /// use pv_units::Celsius;
    /// let ambient = Celsius::new(21.0);
    /// let delta = Celsius::new(4.5);
    /// assert_eq!((ambient + delta).as_celsius(), 25.5);
    /// ```
    Celsius,
    "degC"
);

impl Celsius {
    /// Standard Test Condition cell temperature: 25 °C.
    pub const STC: Self = Self::new(25.0);

    /// Returns the temperature in degrees Celsius.
    #[inline]
    #[must_use]
    pub const fn as_celsius(self) -> f64 {
        self.value()
    }

    /// Returns the temperature in kelvin.
    #[inline]
    #[must_use]
    pub fn as_kelvin(self) -> f64 {
        self.value() + 273.15
    }

    /// Builds a temperature from a kelvin value.
    #[inline]
    #[must_use]
    pub fn from_kelvin(kelvin: f64) -> Self {
        Self::new(kelvin - 273.15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_round_trip() {
        let t = Celsius::new(26.85);
        let k = t.as_kelvin();
        assert!((k - 300.0).abs() < 1e-12);
        let back = Celsius::from_kelvin(k);
        assert!((back.as_celsius() - 26.85).abs() < 1e-12);
    }

    #[test]
    fn stc_is_25() {
        assert_eq!(Celsius::STC.as_celsius(), 25.0);
    }

    #[test]
    fn ordering() {
        assert!(Celsius::new(-5.0) < Celsius::new(30.0));
    }
}
