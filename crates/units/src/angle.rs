//! Angles in degrees and radians.

quantity!(
    /// Angle in degrees.
    ///
    /// Solar azimuth/elevation, roof tilt and orientation are expressed in
    /// degrees at API boundaries; trigonometry converts to [`Radians`].
    ///
    /// ```
    /// use pv_units::Degrees;
    /// let tilt = Degrees::new(26.0);
    /// assert!((tilt.to_radians().value() - 0.4537856).abs() < 1e-6);
    /// ```
    Degrees,
    "deg"
);

quantity!(
    /// Angle in radians.
    Radians,
    "rad"
);

impl Degrees {
    /// Converts to radians.
    #[inline]
    #[must_use]
    pub fn to_radians(self) -> Radians {
        Radians::new(self.value().to_radians())
    }

    /// Sine of the angle.
    #[inline]
    #[must_use]
    pub fn sin(self) -> f64 {
        self.value().to_radians().sin()
    }

    /// Cosine of the angle.
    #[inline]
    #[must_use]
    pub fn cos(self) -> f64 {
        self.value().to_radians().cos()
    }

    /// Tangent of the angle.
    #[inline]
    #[must_use]
    pub fn tan(self) -> f64 {
        self.value().to_radians().tan()
    }

    /// Normalizes into `[0, 360)` degrees.
    #[inline]
    #[must_use]
    pub fn normalized(self) -> Self {
        Self::new(self.value().rem_euclid(360.0))
    }
}

impl Radians {
    /// Converts to degrees.
    #[inline]
    #[must_use]
    pub fn to_degrees(self) -> Degrees {
        Degrees::new(self.value().to_degrees())
    }

    /// Sine of the angle.
    #[inline]
    #[must_use]
    pub fn sin(self) -> f64 {
        self.value().sin()
    }

    /// Cosine of the angle.
    #[inline]
    #[must_use]
    pub fn cos(self) -> f64 {
        self.value().cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_radian_round_trip() {
        let d = Degrees::new(26.0);
        let back = d.to_radians().to_degrees();
        assert!((back.value() - 26.0).abs() < 1e-12);
    }

    #[test]
    fn trig_matches_std() {
        let d = Degrees::new(30.0);
        assert!((d.sin() - 0.5).abs() < 1e-12);
        assert!((d.cos() - 0.75f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalization_wraps_negative() {
        assert_eq!(Degrees::new(-90.0).normalized().value(), 270.0);
        assert_eq!(Degrees::new(720.0).normalized().value(), 0.0);
    }
}
