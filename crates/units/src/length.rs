//! Lengths and distances.

quantity!(
    /// Length in metres.
    ///
    /// Grid pitch, module dimensions, wiring runs and DSM elevations are all
    /// expressed in metres.
    ///
    /// ```
    /// use pv_units::Meters;
    /// let module_w = Meters::new(1.6);
    /// let cells = module_w / Meters::new(0.2);
    /// assert_eq!(cells, 8.0);
    /// ```
    Meters,
    "m"
);

impl Meters {
    /// Returns the length in metres.
    #[inline]
    #[must_use]
    pub const fn as_meters(self) -> f64 {
        self.value()
    }

    /// Builds a length from centimetres.
    #[inline]
    #[must_use]
    pub fn from_cm(cm: f64) -> Self {
        Self::new(cm / 100.0)
    }

    /// Returns the length in centimetres.
    #[inline]
    #[must_use]
    pub fn as_cm(self) -> f64 {
        self.value() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_round_trip() {
        let s = Meters::from_cm(20.0);
        assert_eq!(s.as_meters(), 0.2);
        assert_eq!(s.as_cm(), 20.0);
    }

    #[test]
    fn panel_is_integer_multiple_of_grid() {
        // Paper Sec. III-A: 160x80 cm panel, s = 20 cm -> k1=8, k2=4.
        let s = Meters::from_cm(20.0);
        let w = Meters::from_cm(160.0);
        let h = Meters::from_cm(80.0);
        assert_eq!(w / s, 8.0);
        assert_eq!(h / s, 4.0);
    }
}
