//! Power and energy.

use crate::time::Minutes;

quantity!(
    /// Power in watts.
    ///
    /// ```
    /// use pv_units::{Watts, Minutes};
    /// // A module holding 150 W for a 15-minute step yields 37.5 Wh.
    /// let e = Watts::new(150.0).over(Minutes::new(15.0));
    /// assert_eq!(e.as_wh(), 37.5);
    /// ```
    Watts,
    "W"
);

quantity!(
    /// Energy in watt-hours.
    ///
    /// ```
    /// use pv_units::WattHours;
    /// let e = WattHours::new(3_430_000.0);
    /// assert!((e.as_mwh() - 3.43).abs() < 1e-12);
    /// ```
    WattHours,
    "Wh"
);

/// Energy expressed in kilowatt-hours (view over [`WattHours`]).
pub type KilowattHours = WattHours;
/// Energy expressed in megawatt-hours (view over [`WattHours`]).
pub type MegawattHours = WattHours;

impl Watts {
    /// Energy produced by holding this power for `duration`.
    #[inline]
    #[must_use]
    pub fn over(self, duration: Minutes) -> WattHours {
        WattHours::new(self.value() * duration.as_hours())
    }

    /// Power in kilowatts.
    #[inline]
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.value()
    }

    /// Power in kilowatts.
    #[inline]
    #[must_use]
    pub fn as_kw(self) -> f64 {
        self.value() / 1e3
    }
}

impl WattHours {
    /// Energy in watt-hours.
    #[inline]
    #[must_use]
    pub fn as_wh(self) -> f64 {
        self.value()
    }

    /// Energy in kilowatt-hours.
    #[inline]
    #[must_use]
    pub fn as_kwh(self) -> f64 {
        self.value() / 1e3
    }

    /// Energy in megawatt-hours — the unit of the paper's Table I.
    #[inline]
    #[must_use]
    pub fn as_mwh(self) -> f64 {
        self.value() / 1e6
    }

    /// Builds an energy from kilowatt-hours.
    #[inline]
    #[must_use]
    pub fn from_kwh(kwh: f64) -> Self {
        Self::new(kwh * 1e3)
    }

    /// Builds an energy from megawatt-hours.
    #[inline]
    #[must_use]
    pub fn from_mwh(mwh: f64) -> Self {
        Self::new(mwh * 1e6)
    }

    /// Relative improvement of `self` over `baseline`, in percent —
    /// the "%" column of Table I.
    ///
    /// Returns `f64::NAN` if `baseline` is zero.
    #[inline]
    #[must_use]
    pub fn percent_gain_over(self, baseline: Self) -> f64 {
        if baseline.value() == 0.0 {
            f64::NAN
        } else {
            (self.value() - baseline.value()) / baseline.value() * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_times_minutes() {
        let e = Watts::new(1000.0).over(Minutes::new(30.0));
        assert_eq!(e.as_wh(), 500.0);
    }

    #[test]
    fn unit_conversions() {
        let e = WattHours::from_mwh(4.094);
        assert!((e.as_kwh() - 4094.0).abs() < 1e-9);
        assert!((e.as_wh() - 4_094_000.0).abs() < 1e-6);
    }

    #[test]
    fn percent_gain_matches_table1_row() {
        // Roof 1, N=16: 3.430 MWh -> 4.094 MWh = +19.37 %
        let traditional = WattHours::from_mwh(3.430);
        let proposed = WattHours::from_mwh(4.094);
        let pct = proposed.percent_gain_over(traditional);
        // The paper prints +19.37 from unrounded MWh values; the rounded
        // 3-decimal figures give 19.36.
        assert!((pct - 19.37).abs() < 0.05, "pct = {pct}");
    }

    #[test]
    fn percent_gain_of_zero_baseline_is_nan() {
        assert!(WattHours::new(1.0)
            .percent_gain_over(WattHours::ZERO)
            .is_nan());
    }
}
