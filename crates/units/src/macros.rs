//! Internal macro for declaring `f64`-backed quantity newtypes.
//!
//! Not exported: downstream crates use the concrete types, never the macro
//! (C-NEWTYPE-HIDE — the representation is an implementation detail).

/// Declares a `#[repr(transparent)]` `f64` newtype with the common trait
/// surface (Debug/Display/PartialOrd/Default/arithmetic-with-self and
/// scaling by `f64`) plus `new`/`value` accessors.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value expressed in the canonical unit
            #[doc = concat!("(", $unit, ").")]
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the canonical unit
            #[doc = concat!("(", $unit, ").")]
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the wrapped value is finite (not NaN/inf).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise minimum.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "({} ", $unit, ")"), self.0)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, concat!("{:.*} ", $unit), prec, self.0)
                } else {
                    write!(f, concat!("{} ", $unit), self.0)
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            /// Ratio of two same-unit quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}
