//! Deterministic chunked parallel execution on std scoped threads.
//!
//! Every hot loop in the workspace (shadow casting, energy integration,
//! exhaustive search) is shaped the same way: map a function over a dense
//! index range and combine the results. This crate runs that shape on a
//! configurable number of threads while keeping the output **bit-identical
//! to a sequential run**, preserving the workspace-wide determinism
//! guarantee (DESIGN.md):
//!
//! - chunk boundaries are a pure function of the range length and the
//!   caller's granularity — never of the thread count;
//! - each chunk is computed exactly as a sequential loop over the chunk
//!   would compute it;
//! - chunk results are merged in ascending chunk order, so any reduction
//!   folds partial results in one fixed order.
//!
//! Threads only change *which worker* computes a chunk, never *what* is
//! computed or *in which order* results are combined.
//!
//! The thread count comes from [`Runtime::with_threads`] or the
//! `PV_THREADS` environment variable (see [`Runtime::from_env`]); it
//! defaults to the machine's available parallelism.
//!
//! ```
//! use pv_runtime::Runtime;
//! let sums: Vec<u64> = Runtime::with_threads(4)
//!     .map_chunks(10, 3, |r| r.map(|i| i as u64).sum());
//! assert_eq!(sums, vec![0 + 1 + 2, 3 + 4 + 5, 6 + 7 + 8, 9]);
//! // Identical chunking and order on any thread count:
//! assert_eq!(sums, Runtime::sequential().map_chunks(10, 3, |r| r.map(|i| i as u64).sum()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod proc;

pub use pool::WorkerPool;
pub use proc::{ChildSpec, Supervisor};

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "PV_THREADS";

/// A deterministic parallel executor with a fixed thread count.
///
/// Cheap to copy; carries no thread pool — workers are scoped threads
/// spawned per call and joined before the call returns, so borrowed data
/// flows into the mapped closure without `'static` bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Runtime {
    /// An executor running everything inline on the calling thread.
    #[must_use]
    pub const fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// An executor using `threads` workers (clamped to at least 1).
    #[must_use]
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            threads: if threads == 0 { 1 } else { threads },
        }
    }

    /// An executor configured from the environment: the `PV_THREADS`
    /// variable when set to a positive integer, otherwise the machine's
    /// available parallelism (1 when that cannot be determined).
    #[must_use]
    pub fn from_env() -> Self {
        let fallback = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| parse_threads(&v))
            .unwrap_or_else(fallback);
        Self::with_threads(threads)
    }

    /// The configured worker count.
    #[inline]
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..len` in chunks of `granularity` indices and
    /// returns the per-chunk results in ascending chunk order.
    ///
    /// The chunk layout (`ceil(len / granularity)` chunks, the last one
    /// possibly short) depends only on `len` and `granularity`, so the
    /// returned vector is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero, or if a worker thread panics
    /// (the panic is propagated).
    pub fn map_chunks<T, F>(&self, len: usize, granularity: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        assert!(granularity > 0, "chunk granularity must be positive");
        let num_chunks = len.div_ceil(granularity);
        let bounds = |c: usize| c * granularity..((c + 1) * granularity).min(len);

        let workers = self.threads.min(num_chunks);
        if workers <= 1 {
            return (0..num_chunks).map(|c| f(bounds(c))).collect();
        }

        // Work-stealing over an atomic chunk counter: workers race for
        // chunks, but every chunk's *content* and the final merge order are
        // fixed, so scheduling nondeterminism never reaches the result.
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(num_chunks);
        slots.resize_with(num_chunks, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= num_chunks {
                                break;
                            }
                            local.push((c, f(bounds(c))));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(results) => {
                        for (c, value) in results {
                            slots[c] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk is claimed exactly once"))
            .collect()
    }

    /// Runs `f` over `data` split into consecutive chunks of `granularity`
    /// elements (the last chunk possibly short), in place and possibly in
    /// parallel; `f` receives the chunk index and the mutable chunk slice.
    ///
    /// The chunk layout depends only on `data.len()` and `granularity`, and
    /// every chunk is written by exactly one call of `f`, so the final
    /// contents of `data` are identical for every thread count — this is
    /// the *fill* counterpart of [`map_chunks`](Self::map_chunks), for hot
    /// paths that build large buffers (e.g. per-module trace caches)
    /// without a per-chunk allocation. Chunks are statically distributed
    /// round-robin over the workers.
    ///
    /// ```
    /// use pv_runtime::Runtime;
    /// let mut data = vec![0u32; 7];
    /// Runtime::with_threads(3).for_each_chunk_mut(&mut data, 3, |chunk_idx, chunk| {
    ///     for (off, x) in chunk.iter_mut().enumerate() {
    ///         *x = (chunk_idx * 10 + off) as u32;
    ///     }
    /// });
    /// // Chunk layout depends only on (len, granularity), never threads.
    /// assert_eq!(data, [0, 1, 2, 10, 11, 12, 20]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero, or if a worker thread panics
    /// (the panic is propagated).
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], granularity: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(granularity > 0, "chunk granularity must be positive");
        let num_chunks = data.len().div_ceil(granularity);
        let workers = self.threads.min(num_chunks);
        if workers <= 1 {
            for (c, chunk) in data.chunks_mut(granularity).enumerate() {
                f(c, chunk);
            }
            return;
        }

        let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (c, chunk) in data.chunks_mut(granularity).enumerate() {
            buckets[c % workers].push((c, chunk));
        }
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        for (c, chunk) in bucket {
                            f(c, chunk);
                        }
                    })
                })
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// Maps `f` over `0..len` in chunks (as [`map_chunks`](Self::map_chunks))
    /// and folds the chunk results **in ascending chunk order** with
    /// `fold`, starting from `init`.
    ///
    /// Because the fold order is fixed, non-associative reductions (e.g.
    /// floating-point sums) give bit-identical results on any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero, or if a worker thread panics.
    pub fn reduce_chunks<T, A, F, G>(
        &self,
        len: usize,
        granularity: usize,
        f: F,
        init: A,
        fold: G,
    ) -> A
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
        G: FnMut(A, T) -> A,
    {
        self.map_chunks(len, granularity, f)
            .into_iter()
            .fold(init, fold)
    }
}

impl Default for Runtime {
    /// Defaults to [`Runtime::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parses a `PV_THREADS`-style value: a positive integer, or `None` for
/// anything unusable (empty, zero, garbage) so callers fall back cleanly.
#[must_use]
pub fn parse_threads(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_layout_is_thread_count_independent() {
        for len in [0usize, 1, 7, 64, 1000] {
            for granularity in [1usize, 3, 64, 2048] {
                let expected: Vec<(usize, usize)> =
                    Runtime::sequential().map_chunks(len, granularity, |r| (r.start, r.end));
                for threads in [2usize, 3, 8] {
                    let got = Runtime::with_threads(threads)
                        .map_chunks(len, granularity, |r| (r.start, r.end));
                    assert_eq!(got, expected, "len {len} granularity {granularity}");
                }
            }
        }
    }

    #[test]
    fn ordered_fold_is_bit_identical_across_thread_counts() {
        // A sum of varied-magnitude floats is order-sensitive; identical
        // chunking + ordered merge must make it bit-stable.
        let terms: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_u64 as usize) % 997) as f64 * 1e-3 + 1e6 / (i + 1) as f64)
            .collect();
        let sum = |rt: Runtime| {
            rt.reduce_chunks(
                terms.len(),
                128,
                |r| r.map(|i| terms[i]).sum::<f64>(),
                0.0f64,
                |acc, part| acc + part,
            )
        };
        let seq = sum(Runtime::sequential());
        for threads in [2usize, 4, 16] {
            assert_eq!(sum(Runtime::with_threads(threads)).to_bits(), seq.to_bits());
        }
    }

    #[test]
    fn map_chunks_handles_empty_and_oversized_granularity() {
        let rt = Runtime::with_threads(4);
        assert!(rt.map_chunks(0, 10, |_| 1u8).is_empty());
        assert_eq!(rt.map_chunks(3, 100, |r| r.len()), vec![3]);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_rejected() {
        let _ = Runtime::sequential().map_chunks(5, 0, |_| ());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = Runtime::with_threads(2).map_chunks(8, 1, |r| {
            assert!(r.start != 5, "boom");
            r.start
        });
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(Runtime::with_threads(0).threads(), 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads("-2"), None);
    }

    #[test]
    fn for_each_chunk_mut_fills_every_chunk_identically() {
        for len in [0usize, 1, 5, 64, 1000] {
            for granularity in [1usize, 3, 64, 2048] {
                let mut expected = vec![0u64; len];
                Runtime::sequential().for_each_chunk_mut(&mut expected, granularity, |c, chunk| {
                    for (off, x) in chunk.iter_mut().enumerate() {
                        *x = (c * 1000 + off) as u64;
                    }
                });
                for threads in [2usize, 3, 8] {
                    let mut got = vec![0u64; len];
                    Runtime::with_threads(threads).for_each_chunk_mut(
                        &mut got,
                        granularity,
                        |c, chunk| {
                            for (off, x) in chunk.iter_mut().enumerate() {
                                *x = (c * 1000 + off) as u64;
                            }
                        },
                    );
                    assert_eq!(got, expected, "len {len} granularity {granularity}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn for_each_chunk_mut_zero_granularity_rejected() {
        Runtime::sequential().for_each_chunk_mut(&mut [0u8; 4], 0, |_, _| ());
    }

    #[test]
    #[should_panic(expected = "chunk boom")]
    fn for_each_chunk_mut_worker_panic_propagates() {
        let mut data = vec![0u8; 8];
        Runtime::with_threads(2).for_each_chunk_mut(&mut data, 1, |c, _| {
            assert!(c != 5, "chunk boom");
        });
    }

    #[test]
    fn closure_borrows_environment() {
        let data = [10u32, 20, 30, 40, 50];
        let out =
            Runtime::with_threads(3).map_chunks(data.len(), 2, |r| r.map(|i| data[i]).sum::<u32>());
        assert_eq!(out, vec![30, 70, 50]);
    }
}
