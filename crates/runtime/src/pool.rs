//! A long-lived worker pool over a bounded job queue.
//!
//! [`Runtime`] covers the workspace's *batch* shape: spawn
//! scoped workers, map a closure over a dense range, join. A server has
//! the opposite shape — workers outlive any one unit of work and drain a
//! queue of independent jobs arriving over time. [`WorkerPool`] provides
//! that shape on the same configuration surface: the worker count comes
//! from a [`Runtime`] (so `--threads` / `PV_THREADS` size both executors),
//! and the queue is **bounded**, so a producer that outruns the workers
//! blocks instead of growing memory without limit (backpressure).
//!
//! Scheduling is nondeterministic (any worker may take any job); pools
//! must therefore only run jobs whose *results* do not depend on which
//! worker executes them or in which order — the placement service's
//! request handlers are exactly that: pure functions of the request.
//!
//! ```
//! use pv_runtime::{Runtime, WorkerPool};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let pool = WorkerPool::new(Runtime::with_threads(3), 8);
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..20 {
//!     let hits = Arc::clone(&hits);
//!     pool.submit(move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.shutdown(); // drains the queue, then joins the workers
//! assert_eq!(hits.load(Ordering::Relaxed), 20);
//! ```

use crate::Runtime;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a job is pushed or the queue closes (workers wait).
    not_empty: Condvar,
    /// Signalled when a job is popped (producers wait while full).
    not_full: Condvar,
    capacity: usize,
}

/// A fixed set of worker threads draining a bounded FIFO job queue.
///
/// Dropping the pool without calling [`shutdown`](Self::shutdown) also
/// drains and joins (shutdown-on-drop), so a pool can never leak threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `runtime.threads()` workers over a queue holding at most
    /// `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or a worker thread cannot be spawned.
    #[must_use]
    pub fn new(runtime: Runtime, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        let workers = (0..runtime.threads())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pv-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues `job`, blocking while the queue is at capacity
    /// (backpressure). Returns `false` — without running the job — if the
    /// pool has been shut down.
    pub fn submit<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        loop {
            if !state.open {
                return false;
            }
            if state.jobs.len() < self.shared.capacity {
                state.jobs.push_back(Box::new(job));
                self.shared.not_empty.notify_one();
                return true;
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("pool lock poisoned");
        }
    }

    /// Number of jobs currently queued (not yet picked up by a worker).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue, lets the workers drain every job already
    /// accepted, and joins them. Subsequent [`submit`](Self::submit) calls
    /// on a clone of the handle return `false`.
    ///
    /// # Panics
    ///
    /// Propagates a worker thread's panic.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.open = false;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() && !std::thread::panicking() {
            self.close_and_join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    shared.not_full.notify_one();
                    break job;
                }
                if !state.open {
                    return; // closed and drained
                }
                state = shared.not_empty.wait(state).expect("pool lock poisoned");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn every_submitted_job_runs_exactly_once() {
        let pool = WorkerPool::new(Runtime::with_threads(4), 16);
        let sum = Arc::new(AtomicUsize::new(0));
        for i in 1..=100 {
            let sum = Arc::clone(&sum);
            assert!(pool.submit(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn queue_never_exceeds_capacity() {
        let pool = WorkerPool::new(Runtime::with_threads(1), 2);
        let gate = Arc::new(AtomicUsize::new(0));
        // Stall the single worker so submissions pile up in the queue.
        let g = Arc::clone(&gate);
        pool.submit(move || {
            while g.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let producer = {
                let done = Arc::clone(&done);
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..6 {
                        let done = Arc::clone(&done);
                        pool.submit(move || {
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            };
            // While the worker is stalled, the queue is bounded by its
            // capacity even though the producer wants to push 6 jobs.
            std::thread::sleep(Duration::from_millis(20));
            assert!(pool.queue_depth() <= 2, "depth {}", pool.queue_depth());
            gate.store(1, Ordering::Release);
            producer.join().unwrap();
        });
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn shutdown_drains_pending_jobs_and_drop_is_clean() {
        let count = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(Runtime::with_threads(2), 32);
            for _ in 0..20 {
                let count = Arc::clone(&count);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_micros(100));
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropped without an explicit shutdown: still drains + joins.
        }
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn threads_match_the_runtime() {
        let pool = WorkerPool::new(Runtime::with_threads(3), 1);
        assert_eq!(pool.threads(), 3);
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = WorkerPool::new(Runtime::sequential(), 0);
    }
}
