//! Supervised child-process lifecycle — the sanctioned home for
//! `std::process::Command` in this workspace.
//!
//! The shard router (`pvplan route`) runs each backend worker as a real
//! OS process so a worker crash cannot take the front end down. That
//! requires exactly the kind of ad-hoc lifecycle code (spawn, poll,
//! respawn, kill) that pvlint rule D03 bans everywhere else: like
//! threads, stray child processes escape the deterministic executor and
//! leak on panic. This module centralizes the pattern:
//!
//! * [`ChildSpec`] — a declarative description of a child (program,
//!   arguments, whether the parent holds the child's stdin open);
//! * [`Supervisor`] — spawns one child per spec, then polls them from a
//!   monitor thread and **respawns any child that exits** until
//!   [`Supervisor::shutdown`] is called (also invoked on drop), counting
//!   restarts so callers can observe churn.
//!
//! Holding a child's stdin (`hold_stdin`) gives crash-safe teardown
//! without signal handling: the child runs with `--watch-stdin`-style
//! semantics (exit on stdin EOF), so when the supervising process dies —
//! even on SIGKILL, where no destructor runs — the pipe's write end
//! closes and every child exits on its own.
//!
//! Determinism note: supervision affects only *which OS process* answers
//! a request, never the bytes it answers with — workers are required to
//! be pure functions of their requests, so respawns are invisible to the
//! protocol (DESIGN.md, "Sharded serving").

use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long [`Supervisor::shutdown`] waits for children to exit on their
/// own after closing their stdin pipes, before escalating to kill.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

/// Poll interval inside the shutdown grace window.
const GRACE_POLL: Duration = Duration::from_millis(25);

/// Declarative description of one supervised child process.
#[derive(Clone, Debug)]
pub struct ChildSpec {
    /// Program to execute.
    pub program: PathBuf,
    /// Arguments passed to the program.
    pub args: Vec<String>,
    /// When `true`, the parent keeps a pipe to the child's stdin open for
    /// the child's whole life. Children that exit on stdin EOF then tear
    /// themselves down when the supervising process dies, even when no
    /// destructor runs (e.g. SIGKILL).
    pub hold_stdin: bool,
}

impl ChildSpec {
    /// A spec running `program` with `args`, holding the child's stdin.
    #[must_use]
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        Self {
            program: program.into(),
            args,
            hold_stdin: true,
        }
    }

    fn spawn(&self) -> io::Result<Child> {
        Command::new(&self.program)
            .args(&self.args)
            .stdin(if self.hold_stdin {
                Stdio::piped()
            } else {
                Stdio::null()
            })
            .spawn()
    }
}

/// One live supervised slot: the spec it was spawned from plus the
/// current incarnation of the child.
struct Slot {
    spec: ChildSpec,
    child: Child,
}

impl Slot {
    /// Returns `true` if the current incarnation has exited (or its
    /// status cannot be polled, which only happens once it is gone).
    fn is_dead(&mut self) -> bool {
        !matches!(self.child.try_wait(), Ok(None))
    }

    fn kill_and_reap(&mut self) {
        // Kill errors mean the child is already gone; reaping after that
        // is best-effort and only fails for the same reason.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a fixed set of child processes and keeps them alive.
///
/// A monitor thread polls every child each `poll` interval and respawns
/// any that exited, incrementing a shared restart counter. [`shutdown`]
/// (also run on drop) stops the monitor first, then kills and reaps all
/// children, so shutdown never races a respawn.
///
/// [`shutdown`]: Supervisor::shutdown
pub struct Supervisor {
    slots: Vec<Arc<Mutex<Option<Slot>>>>,
    restarts: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    /// Spawns one child per spec and starts the monitor thread.
    ///
    /// # Errors
    ///
    /// Returns the first spawn error; children spawned before the failure
    /// are killed and reaped before returning.
    pub fn start(specs: Vec<ChildSpec>, poll: Duration) -> io::Result<Self> {
        let mut slots = Vec::with_capacity(specs.len());
        for spec in specs {
            match spec.spawn() {
                Ok(child) => slots.push(Arc::new(Mutex::new(Some(Slot { spec, child })))),
                Err(err) => {
                    for slot in &slots {
                        if let Ok(mut guard) = slot.lock() {
                            if let Some(slot) = guard.as_mut() {
                                slot.kill_and_reap();
                            }
                        }
                    }
                    return Err(err);
                }
            }
        }

        let restarts = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let slots: Vec<_> = slots.iter().map(Arc::clone).collect();
            let restarts = Arc::clone(&restarts);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("pv-supervise".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        for slot in &slots {
                            let Ok(mut guard) = slot.lock() else {
                                continue;
                            };
                            let Some(slot) = guard.as_mut() else {
                                continue;
                            };
                            if !slot.is_dead() || stop.load(Ordering::Acquire) {
                                continue;
                            }
                            // Reap the corpse, then respawn from the same
                            // spec. A failed respawn (e.g. fd exhaustion)
                            // is retried on the next poll tick.
                            let _ = slot.child.wait();
                            if let Ok(next) = slot.spec.spawn() {
                                slot.child = next;
                                restarts.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                        std::thread::sleep(poll);
                    }
                })?
        };

        Ok(Self {
            slots,
            restarts: Arc::clone(&restarts),
            stop,
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// Number of supervised children.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when supervising no children.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// OS process id of child `index`'s current incarnation, if alive.
    #[must_use]
    pub fn child_pid(&self, index: usize) -> Option<u32> {
        let slot = self.slots.get(index)?;
        let guard = slot.lock().ok()?;
        guard.as_ref().map(|slot| slot.child.id())
    }

    /// Total respawns across all children since start.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Acquire)
    }

    /// Stops the monitor thread, then tears every child down: first the
    /// graceful path — close the held stdin pipes (children with
    /// exit-on-EOF semantics drain and exit on their own) and wait up to
    /// `SHUTDOWN_GRACE` (2 s) — then kill and reap whatever is still
    /// alive.
    ///
    /// Idempotent; also invoked by `Drop`, so an early return in the
    /// caller cannot leak children while the supervising process lives.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Ok(mut guard) = self.monitor.lock() {
            if let Some(handle) = guard.take() {
                let _ = handle.join();
            }
        }
        let mut any_held = false;
        for slot in &self.slots {
            if let Ok(mut guard) = slot.lock() {
                if let Some(slot) = guard.as_mut() {
                    any_held |= slot.child.stdin.take().is_some();
                }
            }
        }
        if any_held {
            let deadline = SHUTDOWN_GRACE.as_millis() / GRACE_POLL.as_millis().max(1);
            for _ in 0..deadline {
                let all_exited = self.slots.iter().all(|slot| {
                    slot.lock()
                        .map(|mut guard| guard.as_mut().is_none_or(Slot::is_dead))
                        .unwrap_or(true)
                });
                if all_exited {
                    break;
                }
                std::thread::sleep(GRACE_POLL);
            }
        }
        for slot in &self.slots {
            if let Ok(mut guard) = slot.lock() {
                if let Some(mut slot) = guard.take() {
                    slot.kill_and_reap();
                }
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLL: Duration = Duration::from_millis(20);

    fn sh(script: &str) -> ChildSpec {
        ChildSpec::new("/bin/sh", vec!["-c".into(), script.into()])
    }

    #[test]
    fn children_spawn_and_shutdown_reaps_them() {
        let sup = Supervisor::start(vec![sh("sleep 30"), sh("sleep 30")], POLL)
            .expect("spawn two sleepers");
        assert_eq!(sup.len(), 2);
        let pid = sup.child_pid(0).expect("first child alive");
        assert!(pid > 0);
        sup.shutdown();
        assert_eq!(sup.child_pid(0), None, "shutdown reaps the child");
        // Idempotent.
        sup.shutdown();
    }

    #[test]
    fn exiting_child_is_respawned_with_a_new_pid() {
        // `cat` with held stdin blocks until the pipe closes, so after the
        // first instant exit the respawned incarnation stays alive.
        let sup = Supervisor::start(vec![sh("exit 3")], POLL).expect("spawn");
        let mut waited = 0;
        while sup.restarts() == 0 && waited < 500 {
            std::thread::sleep(POLL);
            waited += 1;
        }
        assert!(sup.restarts() > 0, "dead child gets respawned");
        sup.shutdown();
    }

    #[test]
    fn restarts_stop_after_shutdown() {
        let sup = Supervisor::start(vec![sh("exit 0")], POLL).expect("spawn");
        sup.shutdown();
        let snapshot = sup.restarts();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(sup.restarts(), snapshot, "monitor is stopped");
    }

    #[test]
    fn spawn_failure_surfaces_as_an_error() {
        let missing = ChildSpec::new("/nonexistent/pv-no-such-binary", vec![]);
        assert!(Supervisor::start(vec![sh("sleep 30"), missing], POLL).is_err());
    }

    #[test]
    fn held_stdin_closes_when_supervisor_is_dropped() {
        // A child that exits on stdin EOF must see EOF once the
        // supervisor (and with it the pipe's write end) is gone.
        let sup = Supervisor::start(vec![sh("cat >/dev/null; exit 0")], POLL).expect("spawn");
        let pid = sup.child_pid(0).expect("alive");
        assert!(pid > 0);
        drop(sup); // kills + reaps; stdin pipe closes either way
    }
}
