//! Minimal offline JSON reader **and writer** shared across the workspace.
//!
//! The workspace is offline (no serde), yet several components speak JSON:
//! the bench artifacts (`BENCH_*.json`) must be validated in CI, and the
//! `pv_server` placement service reads request bodies and writes response
//! bodies. This crate is their shared home — originally the private
//! `pv_bench::json` module, extracted once a second consumer appeared.
//!
//! The reader is a small recursive-descent parser covering exactly the
//! JSON grammar — enough to load an artifact or a request body and assert
//! its schema, and small enough to audit at a glance. Not a
//! general-purpose library: numbers are read through `f64`, and object
//! keys keep their last occurrence.
//!
//! The writer is the dual: [`JsonValue::to_json_string`] serializes any
//! value compactly with correct string escaping, [`ObjectBuilder`] builds
//! objects with a fixed field order, and [`render_record_array`] renders
//! the one-record-per-line array shape every `BENCH_*.json` artifact uses.
//!
//! ```
//! use pv_json::{parse, ObjectBuilder};
//! let doc = ObjectBuilder::new()
//!     .field("name", "smoke \"run\"")
//!     .field("count", 3.0)
//!     .build()
//!     .to_json_string();
//! assert_eq!(doc, r#"{"name": "smoke \"run\"", "count": 3}"#);
//! assert_eq!(parse(&doc).unwrap().get("count").unwrap().as_number(), Some(3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escape sequences decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The elements when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` when this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value when this is a number.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value when this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes this value as compact JSON (single line, one space after
    /// `:` and `,` for readability).
    ///
    /// Numbers print in Rust's shortest-round-trip form; callers wanting
    /// fixed decimal places should pre-round with [`rounded`]. Non-finite
    /// numbers render verbatim (`NaN`/`inf`), which is **not** valid JSON —
    /// deliberately, so a broken measurement makes a downstream schema
    /// check fail instead of being laundered into a plausible number.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                // `{}` on f64 is shortest-round-trip; integral values print
                // without a trailing ".0", which is still a JSON number.
                out.push_str(&format!("{x}"));
            }
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}
impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(x: u32) -> Self {
        JsonValue::Number(f64::from(x))
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Array(items)
    }
}

/// Builds a [`JsonValue::Object`] with a fixed, caller-controlled field
/// order — the writer-side idiom for artifact records and service
/// responses, replacing hand-assembled `format!` JSON.
#[derive(Clone, Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, JsonValue)>,
}

impl ObjectBuilder {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `key: value`.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Appends `key: value` when `value` is `Some`, nothing otherwise —
    /// for optional record fields that are omitted rather than nulled.
    #[must_use]
    pub fn maybe(self, key: &str, value: Option<impl Into<JsonValue>>) -> Self {
        match value {
            Some(v) => self.field(key, v),
            None => self,
        }
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

/// Renders a record array in the shared `BENCH_*.json` artifact shape:
/// one compact record per line, two-space indent, trailing newline.
#[must_use]
pub fn render_record_array(records: &[JsonValue]) -> String {
    let mut doc = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        doc.push_str("  ");
        doc.push_str(&record.to_json_string());
        doc.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    doc.push_str("]\n");
    doc
}

/// Rounds `x` to `decimals` decimal places, so the shortest-round-trip
/// writer emits at most that many — the writer-side replacement for the
/// `{:.3}`-style precision of the old `format!` artifact writers.
#[must_use]
pub fn rounded(x: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (x * scale).round() / scale
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed input
/// or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the bench
                            // artifact; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_shape() {
        let doc = r#"[
            {"bench": "evaluator_throughput", "scale": "30 days @ 60 min, N=32",
             "name": "proposal_cold", "ns_per_eval": 1.25e6, "speedup_vs_cold": 1.0},
            {"bench": "evaluator_throughput", "scale": "30 days @ 60 min, N=32",
             "name": "proposal_incremental", "ns_per_eval": 2.0e5, "speedup_vs_cold": 6.25}
        ]"#;
        let v = parse(doc).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0].get("name").unwrap().as_str(),
            Some("proposal_cold")
        );
        assert_eq!(
            items[1].get("speedup_vs_cold").unwrap().as_number(),
            Some(6.25)
        );
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            parse(r#""a\n\"b\" é""#).unwrap(),
            JsonValue::String("a\n\"b\" é".into())
        );
        assert_eq!(
            parse("[1, [2, {}], {\"k\": []}]")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "[] []",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nbreak \"quoted\" back\\slash\ttab";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JsonValue::String(nasty.into()));
    }

    #[test]
    fn writer_round_trips_every_value_kind() {
        let value = ObjectBuilder::new()
            .field("null-ish", JsonValue::Null)
            .field("flag", true)
            .field("n", -2.5)
            .field("s", "quote \" slash \\ tab\t")
            .field(
                "arr",
                vec![JsonValue::Number(1.0), JsonValue::String("x".into())],
            )
            .field("nested", ObjectBuilder::new().field("k", 7usize).build())
            .build();
        let doc = value.to_json_string();
        assert_eq!(parse(&doc).unwrap(), value);
    }

    #[test]
    fn writer_emits_integral_numbers_without_fraction() {
        assert_eq!(JsonValue::Number(3.0).to_json_string(), "3");
        assert_eq!(JsonValue::Number(3.25).to_json_string(), "3.25");
    }

    #[test]
    fn maybe_omits_absent_fields() {
        let with = ObjectBuilder::new().maybe("k", Some(1.0)).build();
        let without = ObjectBuilder::new().maybe("k", None::<f64>).build();
        assert!(with.get("k").is_some());
        assert_eq!(without, JsonValue::Object(vec![]));
    }

    #[test]
    fn record_array_renders_one_record_per_line() {
        let records = [
            ObjectBuilder::new().field("a", 1.0).build(),
            ObjectBuilder::new().field("b", "x").build(),
        ];
        let doc = render_record_array(&records);
        assert_eq!(doc, "[\n  {\"a\": 1},\n  {\"b\": \"x\"}\n]\n");
        assert_eq!(parse(&doc).unwrap().as_array().unwrap().len(), 2);
        assert_eq!(render_record_array(&[]), "[\n]\n");
    }

    #[test]
    fn rounded_truncates_to_requested_decimals() {
        assert_eq!(rounded(1.23456, 3), 1.235);
        assert_eq!(rounded(-0.0004, 3), -0.0);
        assert_eq!(rounded(17.0, 2), 17.0);
    }

    #[test]
    fn non_finite_numbers_render_invalid_on_purpose() {
        assert!(parse(&JsonValue::Number(f64::NAN).to_json_string()).is_err());
        assert!(parse(&JsonValue::Number(f64::INFINITY).to_json_string()).is_err());
    }
}
