//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use pv_geom::{
    euclidean, manhattan, CellCoord, CellMask, Footprint, Grid, GridDims, Placement, Point, Polygon,
};
use pv_units::Meters;

proptest! {
    /// Linear index <-> coordinate is a bijection for arbitrary dims.
    #[test]
    fn linear_index_bijection(w in 1usize..200, h in 1usize..50, i in 0usize..10_000) {
        let dims = GridDims::new(w, h);
        let i = i % dims.num_cells();
        let coord = dims.coord_of(i);
        prop_assert_eq!(dims.linear_index(coord), i);
    }

    /// Mask count always equals the number of set cells observed via iter_set.
    #[test]
    fn mask_count_consistent(w in 1usize..120, h in 1usize..40, seed in 0u64..1000) {
        let dims = GridDims::new(w, h);
        let mask = CellMask::from_fn(dims, |c| {
            // Cheap deterministic pseudo-random predicate.
            let v = (c.x as u64).wrapping_mul(6364136223846793005)
                ^ (c.y as u64).wrapping_mul(1442695040888963407)
                ^ seed;
            v.is_multiple_of(3)
        });
        prop_assert_eq!(mask.iter_set().count(), mask.count());
        for c in mask.iter_set() {
            prop_assert!(mask.is_set(c));
        }
    }

    /// Intersection is commutative and bounded by both operands.
    #[test]
    fn mask_and_properties(seed in 0u64..500) {
        let dims = GridDims::new(40, 25);
        let pred = |c: CellCoord, s: u64| {
            !(c.x as u64 * 31 + c.y as u64 * 17 + s).is_multiple_of(4)
        };
        let a = CellMask::from_fn(dims, |c| pred(c, seed));
        let b = CellMask::from_fn(dims, |c| pred(c, seed.wrapping_add(7)));
        let ab = a.and(&b);
        let ba = b.and(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.count() <= a.count().min(b.count()));
        prop_assert_eq!(a.and_not(&b).count() + ab.count(), a.count());
    }

    /// Manhattan distance dominates Euclidean; both are symmetric and zero
    /// on the diagonal.
    #[test]
    fn distance_metric_laws(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                            bx in -100.0..100.0f64, by in -100.0..100.0f64) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assert!(manhattan(a, b).as_meters() + 1e-12 >= euclidean(a, b).as_meters());
        prop_assert!((manhattan(a, b).as_meters() - manhattan(b, a).as_meters()).abs() < 1e-12);
        prop_assert!((euclidean(a, b).as_meters() - euclidean(b, a).as_meters()).abs() < 1e-12);
        prop_assert!(euclidean(a, a).as_meters() == 0.0);
    }

    /// Placements never overlap and the covered count is always
    /// len * footprint cells.
    #[test]
    fn placement_invariants(anchors in prop::collection::vec((0usize..60, 0usize..20), 1..20)) {
        let dims = GridDims::new(70, 26);
        let mask = CellMask::full(dims);
        let fp = Footprint::from_cells(8, 4, Meters::new(0.2));
        let mut p = Placement::new(dims, fp);
        for (x, y) in anchors {
            let _ = p.try_place(CellCoord::new(x, y), &mask);
        }
        prop_assert_eq!(p.covered_cells().count(), p.len() * fp.num_cells());
        // No two modules share a cell: pairwise disjoint anchors rectangles.
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                let a = p.modules()[i].anchor;
                let b = p.modules()[j].anchor;
                let disjoint_x = a.x + fp.width_cells() <= b.x || b.x + fp.width_cells() <= a.x;
                let disjoint_y = a.y + fp.height_cells() <= b.y || b.y + fp.height_cells() <= a.y;
                prop_assert!(disjoint_x || disjoint_y);
            }
        }
    }

    /// Rasterized polygon area converges to the analytic area.
    #[test]
    fn raster_area_approximates_polygon_area(w in 2.0..20.0f64, h in 2.0..10.0f64) {
        let poly = Polygon::rect(Meters::new(w), Meters::new(h));
        let pitch = 0.2;
        let dims = GridDims::new((w / pitch).ceil() as usize + 2, (h / pitch).ceil() as usize + 2);
        let mask = poly.rasterize(dims, Meters::new(pitch));
        let raster_area = mask.count() as f64 * pitch * pitch;
        let true_area = w * h;
        // Boundary error is at most one cell ring around the perimeter.
        let tolerance = 2.0 * (w + h) * pitch + 4.0 * pitch * pitch;
        prop_assert!((raster_area - true_area).abs() <= tolerance,
            "raster {raster_area} vs true {true_area}");
    }

    /// Grid map preserves shape and composes with indexing.
    #[test]
    fn grid_map_pointwise(w in 1usize..40, h in 1usize..40) {
        let dims = GridDims::new(w, h);
        let g = Grid::from_fn(dims, |c| (c.x * 3 + c.y) as f64);
        let m = g.map(|v| v + 1.0);
        for c in dims.iter() {
            prop_assert_eq!(m[c], g[c] + 1.0);
        }
    }
}
