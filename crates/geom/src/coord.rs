//! Cell addressing: coordinates and grid dimensions.

/// Dimensions of a virtual grid, in cells.
///
/// `width` runs along the roof's horizontal axis (the paper's `W`),
/// `height` along the slope axis (`H`).
///
/// ```
/// use pv_geom::GridDims;
/// // Paper Roof 1: 287 x 51 cells at 20 cm pitch.
/// let dims = GridDims::new(287, 51);
/// assert_eq!(dims.num_cells(), 14_637);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridDims {
    width: usize,
    height: usize,
}

impl GridDims {
    /// Creates grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Self { width, height }
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub const fn width(self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub const fn height(self) -> usize {
        self.height
    }

    /// Total number of grid cells (`width * height`).
    #[inline]
    #[must_use]
    pub const fn num_cells(self) -> usize {
        self.width * self.height
    }

    /// Whether `coord` lies inside the grid.
    #[inline]
    #[must_use]
    pub const fn contains(self, coord: CellCoord) -> bool {
        coord.x < self.width && coord.y < self.height
    }

    /// Row-major linear index of `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    #[inline]
    #[must_use]
    pub fn linear_index(self, coord: CellCoord) -> usize {
        assert!(self.contains(coord), "cell {coord:?} outside {self:?}");
        coord.y * self.width + coord.x
    }

    /// Inverse of [`linear_index`](Self::linear_index).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_cells()`.
    #[inline]
    #[must_use]
    pub fn coord_of(self, index: usize) -> CellCoord {
        assert!(index < self.num_cells(), "linear index out of range");
        CellCoord::new(index % self.width, index / self.width)
    }

    /// Iterates all coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = CellCoord> {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| CellCoord::new(x, y)))
    }
}

/// A cell coordinate: column `x` (0 = west/left), row `y` (0 = top / ridge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellCoord {
    /// Column index.
    pub x: usize,
    /// Row index.
    pub y: usize,
}

impl CellCoord {
    /// Creates a coordinate.
    #[inline]
    #[must_use]
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }

    /// Offsets by a (possibly negative) delta, saturating at zero.
    #[inline]
    #[must_use]
    pub fn saturating_offset(self, dx: isize, dy: isize) -> Self {
        Self {
            x: self.x.saturating_add_signed(dx),
            y: self.y.saturating_add_signed(dy),
        }
    }

    /// Offsets by a delta, returning `None` on underflow.
    #[inline]
    #[must_use]
    pub fn checked_offset(self, dx: isize, dy: isize) -> Option<Self> {
        Some(Self {
            x: self.x.checked_add_signed(dx)?,
            y: self.y.checked_add_signed(dy)?,
        })
    }
}

impl core::fmt::Display for CellCoord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(usize, usize)> for CellCoord {
    fn from((x, y): (usize, usize)) -> Self {
        Self { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index_round_trips() {
        let dims = GridDims::new(7, 5);
        for coord in dims.iter() {
            let idx = dims.linear_index(coord);
            assert_eq!(dims.coord_of(idx), coord);
        }
    }

    #[test]
    fn iter_is_row_major_and_complete() {
        let dims = GridDims::new(3, 2);
        let all: Vec<CellCoord> = dims.iter().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], CellCoord::new(0, 0));
        assert_eq!(all[1], CellCoord::new(1, 0));
        assert_eq!(all[3], CellCoord::new(0, 1));
    }

    #[test]
    fn contains_edges() {
        let dims = GridDims::new(4, 4);
        assert!(dims.contains(CellCoord::new(3, 3)));
        assert!(!dims.contains(CellCoord::new(4, 3)));
        assert!(!dims.contains(CellCoord::new(3, 4)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = GridDims::new(0, 3);
    }

    #[test]
    fn checked_offset_underflow() {
        assert_eq!(CellCoord::new(0, 1).checked_offset(-1, 0), None);
        assert_eq!(
            CellCoord::new(2, 2).checked_offset(-1, -2),
            Some(CellCoord::new(1, 0))
        );
    }
}
