//! Error type for geometric operations.

use crate::coord::CellCoord;

/// Errors produced by geometric construction and placement operations.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// A module size is not an integer multiple of the grid pitch
    /// (the paper requires `w = k1·s`, `h = k2·s`).
    NotGridAligned {
        /// The offending dimension in metres.
        dimension_m: f64,
        /// The grid pitch in metres.
        pitch_m: f64,
    },
    /// A footprint anchored at `anchor` would extend past the grid boundary.
    OutOfBounds {
        /// Requested anchor cell.
        anchor: CellCoord,
    },
    /// A footprint anchored at `anchor` covers at least one invalid cell.
    CoversInvalidCell {
        /// Requested anchor cell.
        anchor: CellCoord,
        /// First invalid covered cell found.
        cell: CellCoord,
    },
    /// A footprint anchored at `anchor` overlaps an already-placed module.
    Overlap {
        /// Requested anchor cell.
        anchor: CellCoord,
        /// Index of the placed module it collides with.
        existing: usize,
    },
    /// A polygon has fewer than three vertices.
    DegeneratePolygon,
}

impl core::fmt::Display for GeomError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotGridAligned { dimension_m, pitch_m } => write!(
                f,
                "module dimension {dimension_m} m is not an integer multiple of grid pitch {pitch_m} m"
            ),
            Self::OutOfBounds { anchor } => {
                write!(f, "footprint at {anchor} extends past the grid boundary")
            }
            Self::CoversInvalidCell { anchor, cell } => {
                write!(f, "footprint at {anchor} covers invalid cell {cell}")
            }
            Self::Overlap { anchor, existing } => {
                write!(f, "footprint at {anchor} overlaps placed module #{existing}")
            }
            Self::DegeneratePolygon => write!(f, "polygon needs at least three vertices"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = GeomError::OutOfBounds {
            anchor: CellCoord::new(5, 9),
        };
        let msg = err.to_string();
        assert!(msg.contains("(5, 9)"));
        assert!(msg.starts_with(char::is_lowercase));
    }
}
