//! Simple polygons in metric roof-plane coordinates.

use crate::coord::GridDims;
use crate::error::GeomError;
use crate::mask::CellMask;
use pv_units::Meters;

/// A simple polygon in the roof plane, vertices in metres.
///
/// Roof outlines are usually rectangles, but lean-to roofs with cut-outs,
/// hips or L-shapes are polygons; the suitable area of the paper's Fig. 6 is
/// a polygon minus encumbrance regions. Rasterization marks a grid cell valid
/// when its *centre* falls inside the polygon (even-odd rule).
///
/// ```
/// use pv_geom::{GridDims, Polygon};
/// use pv_units::Meters;
/// let tri = Polygon::new(vec![(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)])?;
/// let mask = tri.rasterize(GridDims::new(20, 20), Meters::new(0.2));
/// // Half the 4x4 m square, minus boundary effects.
/// assert!(mask.count() > 150 && mask.count() < 250);
/// # Ok::<(), pv_geom::GeomError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Polygon {
    vertices: Vec<(f64, f64)>,
}

impl Polygon {
    /// Creates a polygon from vertices in metres.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DegeneratePolygon`] for fewer than 3 vertices.
    pub fn new(vertices: Vec<(f64, f64)>) -> Result<Self, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::DegeneratePolygon);
        }
        Ok(Self { vertices })
    }

    /// An axis-aligned rectangle `[0, w] × [0, h]`.
    ///
    /// # Panics
    ///
    /// Panics if either side is not positive.
    #[must_use]
    pub fn rect(w: Meters, h: Meters) -> Self {
        assert!(
            w.value() > 0.0 && h.value() > 0.0,
            "rectangle sides must be positive"
        );
        Self {
            vertices: vec![
                (0.0, 0.0),
                (w.value(), 0.0),
                (w.value(), h.value()),
                (0.0, h.value()),
            ],
        }
    }

    /// The polygon's vertices in metres.
    #[must_use]
    pub fn vertices(&self) -> &[(f64, f64)] {
        &self.vertices
    }

    /// Even-odd point-in-polygon test.
    #[must_use]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = self.vertices[i];
            let (xj, yj) = self.vertices[j];
            if (yi > y) != (yj > y) {
                let x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi;
                if x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Axis-aligned bounding box `(min_x, min_y, max_x, max_y)` in metres.
    #[must_use]
    pub fn bounding_box(&self) -> (f64, f64, f64, f64) {
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &self.vertices {
            bb.0 = bb.0.min(x);
            bb.1 = bb.1.min(y);
            bb.2 = bb.2.max(x);
            bb.3 = bb.3.max(y);
        }
        bb
    }

    /// Signed area (shoelace formula), in m²; positive for counter-clockwise
    /// vertex order.
    #[must_use]
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let (x0, y0) = self.vertices[i];
            let (x1, y1) = self.vertices[(i + 1) % n];
            acc += x0 * y1 - x1 * y0;
        }
        acc / 2.0
    }

    /// Rasterizes to a cell mask: a cell is set when its centre lies inside
    /// the polygon. Cell `(i, j)` spans `[i·s, (i+1)·s] × [j·s, (j+1)·s]`.
    #[must_use]
    pub fn rasterize(&self, dims: GridDims, pitch: Meters) -> CellMask {
        let s = pitch.value();
        CellMask::from_fn(dims, |c| {
            let cx = (c.x as f64 + 0.5) * s;
            let cy = (c.y as f64 + 0.5) * s;
            self.contains(cx, cy)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::CellCoord;

    #[test]
    fn rect_contains_interior_not_exterior() {
        let r = Polygon::rect(Meters::new(4.0), Meters::new(2.0));
        assert!(r.contains(2.0, 1.0));
        assert!(!r.contains(4.5, 1.0));
        assert!(!r.contains(-0.1, 1.0));
    }

    #[test]
    fn rect_rasterization_is_exact() {
        // 4 m x 2 m at 20 cm pitch = 20 x 10 cells, all centres inside.
        let r = Polygon::rect(Meters::new(4.0), Meters::new(2.0));
        let mask = r.rasterize(GridDims::new(20, 10), Meters::new(0.2));
        assert_eq!(mask.count(), 200);
    }

    #[test]
    fn triangle_area_and_raster_agree() {
        let tri = Polygon::new(vec![(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]).unwrap();
        assert!((tri.signed_area().abs() - 50.0).abs() < 1e-12);
        let mask = tri.rasterize(GridDims::new(50, 50), Meters::new(0.2));
        // Raster area = count * 0.04 m^2 should approximate 50 m^2.
        let raster_area = mask.count() as f64 * 0.04;
        assert!(
            (raster_area - 50.0).abs() < 2.0,
            "raster area {raster_area}"
        );
    }

    #[test]
    fn concave_polygon() {
        // L-shape: 4x4 square minus its 2x2 top-right quadrant.
        let l = Polygon::new(vec![
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 4.0),
            (0.0, 4.0),
        ])
        .unwrap();
        assert!(l.contains(1.0, 3.0));
        assert!(!l.contains(3.0, 3.0));
        let mask = l.rasterize(GridDims::new(4, 4), Meters::new(1.0));
        assert!(mask.is_set(CellCoord::new(0, 3)));
        assert!(!mask.is_set(CellCoord::new(3, 3)));
        assert_eq!(mask.count(), 12);
    }

    #[test]
    fn degenerate_rejected() {
        assert_eq!(
            Polygon::new(vec![(0.0, 0.0), (1.0, 1.0)]).unwrap_err(),
            GeomError::DegeneratePolygon
        );
    }
}
