//! Grid/raster geometry substrate for GIS-based PV floorplanning.
//!
//! The paper aligns the usable roof surface to a *virtual grid* of square
//! cells of side `s` (20 cm in the experiments) and reasons about module
//! positions purely in grid coordinates. This crate provides that substrate:
//!
//! - [`Grid`] — a dense 2-D raster of arbitrary cell payloads (elevations,
//!   irradiance percentiles, suitability scores, …);
//! - [`CellCoord`] / [`GridDims`] — strongly-typed cell addressing;
//! - [`CellMask`] — a bit-packed set of *valid* cells (the paper's `Ng`);
//! - [`Polygon`] — simple polygons in metric roof coordinates, rasterizable
//!   into masks;
//! - [`Footprint`] / [`Orientation`] — the `k1 × k2`-cell rectangle a module
//!   occupies;
//! - [`Placement`] — a set of non-overlapping placed modules with geometric
//!   queries (coverage, centres, pairwise distances).
//!
//! # Example
//!
//! ```
//! use pv_geom::{CellCoord, CellMask, Footprint, GridDims, Placement};
//! use pv_units::Meters;
//!
//! let dims = GridDims::new(40, 20);
//! let mask = CellMask::full(dims);
//! // A 160x80 cm module on a 20 cm grid covers 8x4 cells.
//! let fp = Footprint::from_module_size(
//!     Meters::new(1.6), Meters::new(0.8), Meters::new(0.2))?;
//! let mut placement = Placement::new(dims, fp);
//! placement.try_place(CellCoord::new(0, 0), &mask)?;
//! placement.try_place(CellCoord::new(10, 4), &mask)?;
//! assert_eq!(placement.len(), 2);
//! # Ok::<(), pv_geom::GeomError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod distance;
mod error;
mod footprint;
mod grid;
mod mask;
mod placement;
mod polygon;

pub use coord::{CellCoord, GridDims};
pub use distance::{chebyshev_cells, euclidean, manhattan, Point};
pub use error::GeomError;
pub use footprint::{Footprint, Orientation};
pub use grid::Grid;
pub use mask::CellMask;
pub use placement::{PlacedModule, Placement};
pub use polygon::Polygon;
