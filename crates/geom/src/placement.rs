//! Sets of placed, non-overlapping modules.

use crate::coord::{CellCoord, GridDims};
use crate::distance::Point;
use crate::error::GeomError;
use crate::footprint::Footprint;
use crate::mask::CellMask;

/// One placed module: its anchor cell (top-left of the covered rectangle).
///
/// All modules of a [`Placement`] share the same [`Footprint`]; per-module
/// electrical roles (which series string a module belongs to) are assigned by
/// the floorplanning layer, not here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacedModule {
    /// Top-left cell of the covered rectangle.
    pub anchor: CellCoord,
}

/// A collection of identically-sized, non-overlapping modules on a grid.
///
/// Maintains the invariants the paper's Line 7 relies on: no two modules
/// share a cell, every module lies fully on valid cells, and covered cells
/// can be queried as a mask.
///
/// ```
/// use pv_geom::{CellCoord, CellMask, Footprint, GridDims, Placement};
/// use pv_units::Meters;
/// let dims = GridDims::new(20, 10);
/// let mask = CellMask::full(dims);
/// let fp = Footprint::from_cells(8, 4, Meters::new(0.2));
/// let mut p = Placement::new(dims, fp);
/// p.try_place(CellCoord::new(0, 0), &mask)?;
/// assert!(p.try_place(CellCoord::new(4, 2), &mask).is_err()); // overlap
/// assert_eq!(p.covered_cells().count(), 32);
/// # Ok::<(), pv_geom::GeomError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    dims: GridDims,
    footprint: Footprint,
    modules: Vec<PlacedModule>,
    covered: CellMask,
}

impl Placement {
    /// An empty placement of `footprint`-sized modules on a `dims` grid.
    #[must_use]
    pub fn new(dims: GridDims, footprint: Footprint) -> Self {
        Self {
            dims,
            footprint,
            modules: Vec::new(),
            covered: CellMask::empty(dims),
        }
    }

    /// Grid dimensions.
    #[inline]
    #[must_use]
    pub const fn dims(&self) -> GridDims {
        self.dims
    }

    /// The shared module footprint.
    #[inline]
    #[must_use]
    pub const fn footprint(&self) -> Footprint {
        self.footprint
    }

    /// Number of placed modules.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether no module has been placed yet.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The placed modules, in placement order.
    #[inline]
    #[must_use]
    pub fn modules(&self) -> &[PlacedModule] {
        &self.modules
    }

    /// Mask of all cells covered by placed modules.
    #[inline]
    #[must_use]
    pub const fn covered_cells(&self) -> &CellMask {
        &self.covered
    }

    /// Checks whether a module anchored at `anchor` could be placed: fully
    /// inside the grid, fully on `valid` cells, and not overlapping any
    /// already-placed module.
    ///
    /// # Errors
    ///
    /// Returns the specific [`GeomError`] describing the first violated
    /// constraint; `Ok(())` means [`try_place`](Self::try_place) would
    /// succeed.
    pub fn check(&self, anchor: CellCoord, valid: &CellMask) -> Result<(), GeomError> {
        let (w, h) = (self.footprint.width_cells(), self.footprint.height_cells());
        if anchor.x + w > self.dims.width() || anchor.y + h > self.dims.height() {
            return Err(GeomError::OutOfBounds { anchor });
        }
        for dy in 0..h {
            for dx in 0..w {
                let cell = CellCoord::new(anchor.x + dx, anchor.y + dy);
                if !valid.is_set(cell) {
                    return Err(GeomError::CoversInvalidCell { anchor, cell });
                }
                if self.covered.is_set(cell) {
                    let existing = self
                        .modules
                        .iter()
                        .position(|m| self.module_covers(*m, cell))
                        .expect("covered cell must belong to a module");
                    return Err(GeomError::Overlap { anchor, existing });
                }
            }
        }
        Ok(())
    }

    /// Places a module anchored at `anchor`, validating against `valid`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`check`](Self::check); on error the placement is
    /// unchanged.
    pub fn try_place(&mut self, anchor: CellCoord, valid: &CellMask) -> Result<usize, GeomError> {
        self.check(anchor, valid)?;
        self.cover(anchor, true);
        self.modules.push(PlacedModule { anchor });
        Ok(self.modules.len() - 1)
    }

    /// Moves module `i` to a new anchor, validating against `valid`.
    ///
    /// The module's current cells do not count as occupied during the
    /// check, so relocating onto (or overlapping) its own footprint is
    /// allowed. On error the placement is unchanged; on success the
    /// previous anchor is returned (handy for undo).
    ///
    /// # Errors
    ///
    /// Same conditions as [`check`](Self::check) with module `i` ignored.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn try_relocate(
        &mut self,
        i: usize,
        anchor: CellCoord,
        valid: &CellMask,
    ) -> Result<CellCoord, GeomError> {
        let old = self.modules[i].anchor;
        self.cover(old, false);
        match self.check(anchor, valid) {
            Ok(()) => {
                self.cover(anchor, true);
                self.modules[i].anchor = anchor;
                Ok(old)
            }
            Err(e) => {
                self.cover(old, true);
                Err(e)
            }
        }
    }

    /// Sets or clears the covered bits of a footprint at `anchor`.
    fn cover(&mut self, anchor: CellCoord, on: bool) {
        let (w, h) = (self.footprint.width_cells(), self.footprint.height_cells());
        for dy in 0..h {
            for dx in 0..w {
                self.covered
                    .set(CellCoord::new(anchor.x + dx, anchor.y + dy), on);
            }
        }
    }

    /// Removes the most recently placed module, returning it.
    pub fn pop(&mut self) -> Option<PlacedModule> {
        let m = self.modules.pop()?;
        self.cover(m.anchor, false);
        Some(m)
    }

    /// Geometric centre of module `i` in metric roof coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn center(&self, i: usize) -> Point {
        let m = self.modules[i];
        let s = self.footprint.pitch().value();
        Point::new(
            (m.anchor.x as f64 + self.footprint.width_cells() as f64 / 2.0) * s,
            (m.anchor.y as f64 + self.footprint.height_cells() as f64 / 2.0) * s,
        )
    }

    /// Iterates the cells covered by module `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cells_of(&self, i: usize) -> impl Iterator<Item = CellCoord> + '_ {
        let m = self.modules[i];
        let (w, h) = (self.footprint.width_cells(), self.footprint.height_cells());
        (0..h).flat_map(move |dy| {
            (0..w).map(move |dx| CellCoord::new(m.anchor.x + dx, m.anchor.y + dy))
        })
    }

    fn module_covers(&self, m: PlacedModule, cell: CellCoord) -> bool {
        cell.x >= m.anchor.x
            && cell.x < m.anchor.x + self.footprint.width_cells()
            && cell.y >= m.anchor.y
            && cell.y < m.anchor.y + self.footprint.height_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_units::Meters;

    fn setup() -> (GridDims, CellMask, Placement) {
        let dims = GridDims::new(30, 12);
        let mask = CellMask::full(dims);
        let fp = Footprint::from_cells(8, 4, Meters::new(0.2));
        (dims, mask, Placement::new(dims, fp))
    }

    #[test]
    fn place_and_cover() {
        let (_, mask, mut p) = setup();
        let idx = p.try_place(CellCoord::new(2, 3), &mask).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(p.covered_cells().count(), 32);
        assert!(p.covered_cells().is_set(CellCoord::new(9, 6)));
        assert!(!p.covered_cells().is_set(CellCoord::new(10, 6)));
    }

    #[test]
    fn overlap_detected_with_index() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(0, 0), &mask).unwrap();
        p.try_place(CellCoord::new(8, 0), &mask).unwrap();
        let err = p.try_place(CellCoord::new(12, 2), &mask).unwrap_err();
        assert_eq!(
            err,
            GeomError::Overlap {
                anchor: CellCoord::new(12, 2),
                existing: 1
            }
        );
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn out_of_bounds_detected() {
        let (_, mask, mut p) = setup();
        assert!(matches!(
            p.try_place(CellCoord::new(23, 0), &mask),
            Err(GeomError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn invalid_cell_detected() {
        let (dims, _, mut p) = setup();
        let mut mask = CellMask::full(dims);
        mask.set(CellCoord::new(4, 2), false);
        let err = p.try_place(CellCoord::new(0, 0), &mask).unwrap_err();
        assert_eq!(
            err,
            GeomError::CoversInvalidCell {
                anchor: CellCoord::new(0, 0),
                cell: CellCoord::new(4, 2)
            }
        );
    }

    #[test]
    fn pop_restores_cells() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(0, 0), &mask).unwrap();
        let before = p.covered_cells().count();
        p.try_place(CellCoord::new(10, 0), &mask).unwrap();
        let m = p.pop().unwrap();
        assert_eq!(m.anchor, CellCoord::new(10, 0));
        assert_eq!(p.covered_cells().count(), before);
        // The freed area is placeable again.
        assert!(p.try_place(CellCoord::new(10, 0), &mask).is_ok());
    }

    #[test]
    fn relocate_moves_module_and_covers() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(0, 0), &mask).unwrap();
        p.try_place(CellCoord::new(8, 0), &mask).unwrap();
        let old = p.try_relocate(0, CellCoord::new(0, 6), &mask).unwrap();
        assert_eq!(old, CellCoord::new(0, 0));
        assert_eq!(p.modules()[0].anchor, CellCoord::new(0, 6));
        assert_eq!(p.covered_cells().count(), 64);
        assert!(!p.covered_cells().is_set(CellCoord::new(0, 0)));
        assert!(p.covered_cells().is_set(CellCoord::new(0, 6)));
    }

    #[test]
    fn relocate_onto_own_footprint_allowed() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(4, 4), &mask).unwrap();
        // Shift by one cell: overlaps the old position — legal, the module
        // does not collide with itself.
        assert!(p.try_relocate(0, CellCoord::new(5, 4), &mask).is_ok());
        assert_eq!(p.covered_cells().count(), 32);
    }

    #[test]
    fn failed_relocate_leaves_placement_unchanged() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(0, 0), &mask).unwrap();
        p.try_place(CellCoord::new(8, 0), &mask).unwrap();
        let before = p.clone();
        // Overlaps module 1.
        assert!(p.try_relocate(0, CellCoord::new(10, 1), &mask).is_err());
        // Out of bounds.
        assert!(p.try_relocate(0, CellCoord::new(25, 0), &mask).is_err());
        assert_eq!(p, before);
    }

    #[test]
    fn center_in_meters() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(0, 0), &mask).unwrap();
        let c = p.center(0);
        // 8x4 cells at 0.2 m -> centre at (0.8, 0.4).
        assert!((c.x - 0.8).abs() < 1e-12);
        assert!((c.y - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cells_of_enumerates_footprint() {
        let (_, mask, mut p) = setup();
        p.try_place(CellCoord::new(3, 2), &mask).unwrap();
        let cells: Vec<CellCoord> = p.cells_of(0).collect();
        assert_eq!(cells.len(), 32);
        assert!(cells.contains(&CellCoord::new(10, 5)));
        assert!(!cells.contains(&CellCoord::new(11, 5)));
    }
}
