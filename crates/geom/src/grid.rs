//! Dense 2-D rasters.

use crate::coord::{CellCoord, GridDims};

/// A dense, row-major 2-D raster of cell payloads.
///
/// Used for DSM elevations, per-cell irradiance statistics, suitability
/// scores, and rendering buffers.
///
/// ```
/// use pv_geom::{CellCoord, Grid, GridDims};
/// let dims = GridDims::new(4, 3);
/// let grid = Grid::from_fn(dims, |c| (c.x + c.y) as f64);
/// assert_eq!(grid[CellCoord::new(3, 2)], 5.0);
/// assert_eq!(grid.iter().count(), 12);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid<T> {
    dims: GridDims,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid with every cell set to `fill`.
    #[must_use]
    pub fn filled(dims: GridDims, fill: T) -> Self {
        Self {
            dims,
            data: vec![fill; dims.num_cells()],
        }
    }
}

impl<T> Grid<T> {
    /// Creates a grid by evaluating `f` at every cell (row-major order).
    #[must_use]
    pub fn from_fn(dims: GridDims, mut f: impl FnMut(CellCoord) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.num_cells());
        for coord in dims.iter() {
            data.push(f(coord));
        }
        Self { dims, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dims.num_cells()`.
    #[must_use]
    pub fn from_vec(dims: GridDims, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            dims.num_cells(),
            "buffer length must match grid dimensions"
        );
        Self { dims, data }
    }

    /// Grid dimensions.
    #[inline]
    #[must_use]
    pub const fn dims(&self) -> GridDims {
        self.dims
    }

    /// Borrow of the cell at `coord`, or `None` if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, coord: CellCoord) -> Option<&T> {
        if self.dims.contains(coord) {
            Some(&self.data[self.dims.linear_index(coord)])
        } else {
            None
        }
    }

    /// Mutable borrow of the cell at `coord`, or `None` if out of bounds.
    #[inline]
    #[must_use]
    pub fn get_mut(&mut self, coord: CellCoord) -> Option<&mut T> {
        if self.dims.contains(coord) {
            let idx = self.dims.linear_index(coord);
            Some(&mut self.data[idx])
        } else {
            None
        }
    }

    /// Iterates cell payloads in row-major order.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates `(coord, &payload)` pairs in row-major order.
    pub fn enumerate(&self) -> impl Iterator<Item = (CellCoord, &T)> {
        self.dims.iter().zip(self.data.iter())
    }

    /// Raw row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning its buffer.
    #[inline]
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Maps every cell through `f`, preserving dimensions.
    #[must_use]
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            dims: self.dims,
            data: self.data.iter().map(&mut f).collect(),
        }
    }

    /// One row of the raster as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[must_use]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.dims.height(), "row out of range");
        let w = self.dims.width();
        &self.data[y * w..(y + 1) * w]
    }
}

impl<T> core::ops::Index<CellCoord> for Grid<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics if `coord` is out of bounds.
    #[inline]
    fn index(&self, coord: CellCoord) -> &T {
        &self.data[self.dims.linear_index(coord)]
    }
}

impl<T> core::ops::IndexMut<CellCoord> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, coord: CellCoord) -> &mut T {
        let idx = self.dims.linear_index(coord);
        &mut self.data[idx]
    }
}

impl Grid<f64> {
    /// Minimum and maximum over all cells, ignoring NaNs.
    ///
    /// Returns `None` when every cell is NaN (or the grid is empty).
    #[must_use]
    pub fn finite_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            range = Some(match range {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            });
        }
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major() {
        let g = Grid::from_fn(GridDims::new(3, 2), |c| c.y * 10 + c.x);
        assert_eq!(g.as_slice(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let g = Grid::filled(GridDims::new(2, 2), 0u8);
        assert!(g.get(CellCoord::new(2, 0)).is_none());
        assert!(g.get(CellCoord::new(1, 1)).is_some());
    }

    #[test]
    fn index_mut_writes() {
        let mut g = Grid::filled(GridDims::new(2, 2), 0u8);
        g[CellCoord::new(1, 0)] = 9;
        assert_eq!(g[CellCoord::new(1, 0)], 9);
    }

    #[test]
    fn map_preserves_dims() {
        let g = Grid::from_fn(GridDims::new(4, 4), |c| c.x as f64);
        let doubled = g.map(|v| v * 2.0);
        assert_eq!(doubled.dims(), g.dims());
        assert_eq!(doubled[CellCoord::new(3, 0)], 6.0);
    }

    #[test]
    fn finite_range_skips_nan() {
        let mut g = Grid::filled(GridDims::new(2, 1), f64::NAN);
        assert_eq!(g.finite_range(), None);
        g[CellCoord::new(1, 0)] = 4.0;
        assert_eq!(g.finite_range(), Some((4.0, 4.0)));
    }

    #[test]
    fn row_slices() {
        let g = Grid::from_fn(GridDims::new(3, 2), |c| c.y);
        assert_eq!(g.row(1), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "match grid dimensions")]
    fn from_vec_length_mismatch() {
        let _ = Grid::from_vec(GridDims::new(2, 2), vec![1, 2, 3]);
    }
}
