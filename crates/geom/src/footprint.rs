//! Module footprints on the virtual grid.

use crate::error::GeomError;
use pv_units::Meters;

/// Orientation of a module on the roof plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Orientation {
    /// Long side horizontal (the paper's default: 160 cm wide × 80 cm tall).
    #[default]
    Landscape,
    /// Long side vertical.
    Portrait,
}

/// The axis-aligned rectangle of grid cells one PV module occupies.
///
/// The paper requires module sides to be integer multiples of the grid pitch
/// `s`: `w = k1·s`, `h = k2·s` (Sec. III-A). For the PV-MF165EB3 at
/// `s = 20 cm` this is 8 × 4 cells.
///
/// ```
/// use pv_geom::{Footprint, Orientation};
/// use pv_units::Meters;
/// let fp = Footprint::from_module_size(
///     Meters::new(1.6), Meters::new(0.8), Meters::new(0.2))?;
/// assert_eq!((fp.width_cells(), fp.height_cells()), (8, 4));
/// assert_eq!(fp.rotated().orientation(), Orientation::Portrait);
/// assert_eq!(fp.rotated().width_cells(), 4);
/// # Ok::<(), pv_geom::GeomError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Footprint {
    k1: usize,
    k2: usize,
    pitch_cm: u32,
    orientation: Orientation,
}

impl Footprint {
    /// Builds a footprint directly from cell counts (`k1` wide, `k2` tall).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or the pitch is zero.
    #[must_use]
    pub fn from_cells(k1: usize, k2: usize, pitch: Meters) -> Self {
        assert!(k1 > 0 && k2 > 0, "footprint must cover at least one cell");
        let pitch_cm = pitch.as_cm().round() as u32;
        assert!(pitch_cm > 0, "pitch must be positive");
        Self {
            k1,
            k2,
            pitch_cm,
            orientation: Orientation::Landscape,
        }
    }

    /// Derives the footprint of a `w × h` module on a grid of the given
    /// pitch, in landscape orientation.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NotGridAligned`] when a side is not an integer
    /// multiple of the pitch (within 1 mm tolerance).
    pub fn from_module_size(w: Meters, h: Meters, pitch: Meters) -> Result<Self, GeomError> {
        let cells = |dim: Meters| -> Result<usize, GeomError> {
            let ratio = dim / pitch;
            let rounded = ratio.round();
            if (ratio - rounded).abs() * pitch.value() > 1e-3 || rounded < 1.0 {
                Err(GeomError::NotGridAligned {
                    dimension_m: dim.value(),
                    pitch_m: pitch.value(),
                })
            } else {
                Ok(rounded as usize)
            }
        };
        Ok(Self::from_cells(cells(w)?, cells(h)?, pitch))
    }

    /// Cells along the grid x-axis in the current orientation.
    #[inline]
    #[must_use]
    pub const fn width_cells(&self) -> usize {
        match self.orientation {
            Orientation::Landscape => self.k1,
            Orientation::Portrait => self.k2,
        }
    }

    /// Cells along the grid y-axis in the current orientation.
    #[inline]
    #[must_use]
    pub const fn height_cells(&self) -> usize {
        match self.orientation {
            Orientation::Landscape => self.k2,
            Orientation::Portrait => self.k1,
        }
    }

    /// Total cells covered (`k1 · k2`, orientation-independent).
    #[inline]
    #[must_use]
    pub const fn num_cells(&self) -> usize {
        self.k1 * self.k2
    }

    /// Grid pitch.
    #[inline]
    #[must_use]
    pub fn pitch(&self) -> Meters {
        Meters::from_cm(f64::from(self.pitch_cm))
    }

    /// Physical width in the current orientation.
    #[inline]
    #[must_use]
    pub fn width(&self) -> Meters {
        self.pitch() * self.width_cells() as f64
    }

    /// Physical height in the current orientation.
    #[inline]
    #[must_use]
    pub fn height(&self) -> Meters {
        self.pitch() * self.height_cells() as f64
    }

    /// Current orientation.
    #[inline]
    #[must_use]
    pub const fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// The same footprint rotated by 90°.
    #[inline]
    #[must_use]
    pub const fn rotated(self) -> Self {
        Self {
            orientation: match self.orientation {
                Orientation::Landscape => Orientation::Portrait,
                Orientation::Portrait => Orientation::Landscape,
            },
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_module_is_8x4_cells() {
        let fp = Footprint::from_module_size(Meters::new(1.6), Meters::new(0.8), Meters::new(0.2))
            .unwrap();
        assert_eq!(fp.width_cells(), 8);
        assert_eq!(fp.height_cells(), 4);
        assert_eq!(fp.num_cells(), 32);
        assert_eq!(fp.width().as_meters(), 1.6);
    }

    #[test]
    fn rotation_swaps_axes_and_round_trips() {
        let fp = Footprint::from_cells(8, 4, Meters::new(0.2));
        let rot = fp.rotated();
        assert_eq!(rot.width_cells(), 4);
        assert_eq!(rot.height_cells(), 8);
        assert_eq!(rot.num_cells(), fp.num_cells());
        assert_eq!(rot.rotated(), fp);
    }

    #[test]
    fn misaligned_module_rejected() {
        let err =
            Footprint::from_module_size(Meters::new(1.65), Meters::new(0.8), Meters::new(0.2))
                .unwrap_err();
        assert!(matches!(err, GeomError::NotGridAligned { .. }));
    }

    #[test]
    fn near_aligned_within_tolerance_accepted() {
        // 1.6004 m on a 20 cm grid: off by 0.4 mm, accepted as 8 cells.
        let fp =
            Footprint::from_module_size(Meters::new(1.6004), Meters::new(0.8), Meters::new(0.2))
                .unwrap();
        assert_eq!(fp.width_cells(), 8);
    }
}
