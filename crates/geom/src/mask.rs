//! Bit-packed sets of valid grid cells.

use crate::coord::{CellCoord, GridDims};

/// A bit-packed subset of a grid's cells.
///
/// The paper's `Ng` — the number of *valid* grid elements after discarding
/// cells outside the roof outline or occupied by encumbrances — is exactly
/// [`CellMask::count`] of the suitable-area mask.
///
/// ```
/// use pv_geom::{CellCoord, CellMask, GridDims};
/// let mut mask = CellMask::empty(GridDims::new(8, 8));
/// mask.set(CellCoord::new(3, 3), true);
/// assert_eq!(mask.count(), 1);
/// assert!(mask.is_set(CellCoord::new(3, 3)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellMask {
    dims: GridDims,
    words: Vec<u64>,
    count: usize,
}

impl CellMask {
    /// A mask with no cell set.
    #[must_use]
    pub fn empty(dims: GridDims) -> Self {
        Self {
            dims,
            words: vec![0; dims.num_cells().div_ceil(64)],
            count: 0,
        }
    }

    /// A mask with every cell set.
    #[must_use]
    pub fn full(dims: GridDims) -> Self {
        let mut mask = Self::empty(dims);
        for i in 0..dims.num_cells() {
            mask.words[i / 64] |= 1 << (i % 64);
        }
        mask.count = dims.num_cells();
        mask
    }

    /// Builds a mask from a predicate over coordinates.
    #[must_use]
    pub fn from_fn(dims: GridDims, mut f: impl FnMut(CellCoord) -> bool) -> Self {
        let mut mask = Self::empty(dims);
        for coord in dims.iter() {
            if f(coord) {
                mask.set(coord, true);
            }
        }
        mask
    }

    /// Grid dimensions this mask refers to.
    #[inline]
    #[must_use]
    pub const fn dims(&self) -> GridDims {
        self.dims
    }

    /// Number of set (valid) cells — the paper's `Ng`.
    #[inline]
    #[must_use]
    pub const fn count(&self) -> usize {
        self.count
    }

    /// Whether `coord` is set. Out-of-bounds coordinates read as unset.
    #[inline]
    #[must_use]
    pub fn is_set(&self, coord: CellCoord) -> bool {
        if !self.dims.contains(coord) {
            return false;
        }
        let i = self.dims.linear_index(coord);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets or clears a cell, updating the running count.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of bounds.
    pub fn set(&mut self, coord: CellCoord, value: bool) {
        let i = self.dims.linear_index(coord);
        let word = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let was_set = *word & bit != 0;
        if value && !was_set {
            *word |= bit;
            self.count += 1;
        } else if !value && was_set {
            *word &= !bit;
            self.count -= 1;
        }
    }

    /// Iterates over set coordinates in row-major order.
    pub fn iter_set(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let dims = self.dims;
        self.words.iter().enumerate().flat_map(move |(w, &bits)| {
            let mut bits = bits;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let linear = w * 64 + tz;
                Some(linear)
            })
            .filter(move |&linear| linear < dims.num_cells())
            .map(move |linear| dims.coord_of(linear))
        })
    }

    /// Intersection with another mask.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different dimensions.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.dims, other.dims, "mask dimensions must match");
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Self {
            dims: self.dims,
            words,
            count,
        }
    }

    /// Cells set in `self` but not in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different dimensions.
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        assert_eq!(self.dims, other.dims, "mask dimensions must match");
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Self {
            dims: self.dims,
            words,
            count,
        }
    }

    /// Whether an axis-aligned `w × h` cell rectangle anchored (top-left) at
    /// `anchor` lies entirely within set cells.
    #[must_use]
    pub fn rect_is_set(&self, anchor: CellCoord, w: usize, h: usize) -> bool {
        if anchor.x + w > self.dims.width() || anchor.y + h > self.dims.height() {
            return false;
        }
        for dy in 0..h {
            for dx in 0..w {
                if !self.is_set(CellCoord::new(anchor.x + dx, anchor.y + dy)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full_counts() {
        let dims = GridDims::new(13, 7); // 91 cells, not a multiple of 64
        assert_eq!(CellMask::empty(dims).count(), 0);
        assert_eq!(CellMask::full(dims).count(), 91);
    }

    #[test]
    fn set_clear_updates_count() {
        let mut m = CellMask::empty(GridDims::new(4, 4));
        let c = CellCoord::new(2, 1);
        m.set(c, true);
        m.set(c, true); // idempotent
        assert_eq!(m.count(), 1);
        m.set(c, false);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn iter_set_matches_membership() {
        let dims = GridDims::new(70, 3); // spans multiple words
        let m = CellMask::from_fn(dims, |c| (c.x + c.y) % 5 == 0);
        let from_iter: Vec<CellCoord> = m.iter_set().collect();
        let expected: Vec<CellCoord> = dims.iter().filter(|&c| m.is_set(c)).collect();
        assert_eq!(from_iter, expected);
        assert_eq!(from_iter.len(), m.count());
    }

    #[test]
    fn out_of_bounds_reads_unset() {
        let m = CellMask::full(GridDims::new(3, 3));
        assert!(!m.is_set(CellCoord::new(3, 0)));
    }

    #[test]
    fn boolean_algebra() {
        let dims = GridDims::new(10, 10);
        let evens = CellMask::from_fn(dims, |c| c.x % 2 == 0);
        let top = CellMask::from_fn(dims, |c| c.y < 5);
        let both = evens.and(&top);
        assert_eq!(both.count(), 25);
        let only_even_bottom = evens.and_not(&top);
        assert_eq!(only_even_bottom.count(), 25);
    }

    #[test]
    fn rect_queries() {
        let dims = GridDims::new(10, 10);
        let mut m = CellMask::full(dims);
        assert!(m.rect_is_set(CellCoord::new(2, 2), 8, 4));
        assert!(!m.rect_is_set(CellCoord::new(3, 2), 8, 4)); // exits right edge
        m.set(CellCoord::new(5, 3), false);
        assert!(!m.rect_is_set(CellCoord::new(2, 2), 8, 4));
    }
}
