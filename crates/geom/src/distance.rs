//! Distance metrics in the roof plane.

use pv_units::Meters;

/// A point in metric roof-plane coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical (along-slope) coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from metric coordinates.
    #[inline]
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }
}

/// Manhattan (L1) distance — the paper's wiring-overhead metric: extra wire
/// between two modules is the sum of their vertical and horizontal
/// displacements (`d_v + d_h`, Fig. 4).
///
/// ```
/// use pv_geom::{manhattan, Point};
/// let d = manhattan(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
/// assert_eq!(d.as_meters(), 7.0);
/// ```
#[inline]
#[must_use]
pub fn manhattan(a: Point, b: Point) -> Meters {
    Meters::new((a.x - b.x).abs() + (a.y - b.y).abs())
}

/// Euclidean (L2) distance, used for the greedy algorithm's distance
/// threshold ("twice the average distance of the already placed modules").
///
/// ```
/// use pv_geom::{euclidean, Point};
/// let d = euclidean(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
/// assert_eq!(d.as_meters(), 5.0);
/// ```
#[inline]
#[must_use]
pub fn euclidean(a: Point, b: Point) -> Meters {
    Meters::new(((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt())
}

/// Chebyshev (L∞) distance in whole cells, useful for neighbourhood tests.
#[inline]
#[must_use]
pub fn chebyshev_cells(a: (usize, usize), b: (usize, usize)) -> usize {
    a.0.abs_diff(b.0).max(a.1.abs_diff(b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_agree_on_axis() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, 1.0);
        assert_eq!(manhattan(a, b).as_meters(), 4.0);
        assert_eq!(euclidean(a, b).as_meters(), 4.0);
    }

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 3.0);
        assert!(manhattan(a, b).as_meters() >= euclidean(a, b).as_meters());
    }

    #[test]
    fn chebyshev() {
        assert_eq!(chebyshev_cells((2, 3), (7, 5)), 5);
        assert_eq!(chebyshev_cells((7, 5), (2, 3)), 5);
    }
}
