//! Benchmark of the energy evaluator's batched/parallel/incremental
//! refactors — the Sec. V-D runtime story at evaluation granularity.
//!
//! Rungs on the paper's Roof 2 at the 30-day smoke resolution, N = 32
//! (the heaviest published topology):
//!
//! 1. `scalar_reference` — the pre-batching triple loop
//!    (steps × modules × cells scalar irradiance composition);
//! 2. `batched_seq` — the batched popcount/SVF-sum kernel on one thread;
//! 3. `batched_4thr` — the same kernel over 4-way time-chunk parallelism
//!    (speedup bounded by the machine's core count; identical results
//!    regardless);
//! 4. `proposal_cold` / `proposal_incremental` — an anneal-style proposal
//!    loop (relocate one module + full re-score) on the cold path vs the
//!    trace-cached delta-evaluation path (memo warm); bit-identical
//!    reports, measured single-threaded.
//!
//! Also times extraction (sequential vs 4 threads) for the same reason.
//! Pass `--test` to run each body once (CI keeps the bench green without
//! paying for measurements).
//!
//! On top of the printed numbers, the proposal loop is measured with the
//! shared [`pv_bench::proposal_loop_timings`] probe, the three rebuilt
//! lane kernels with [`pv_bench::kernel_probe_timings`] (`kernel_*`
//! rows, lane vs scalar reference shape), and everything is written to
//! `BENCH_evaluator.json` at the repo root, so the perf trajectory is
//! machine-readable across PRs (CI checks the file's schema and rejects
//! any `kernel_*` row whose speedup drops below 1).
//!
//! Run: `cargo bench -p pv_bench --bench evaluator_throughput`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_bench::{
    extract_scenario_with, kernel_probe_timings, proposal_loop_timings, proposal_probe_scale,
    relocation_probe, scalar_reference_energy, write_bench_records, Resolution, WEATHER_SEED,
};
use pv_floorplan::{
    greedy_placement_with_map, EnergyEvaluator, FloorplanConfig, SuitabilityMap, TraceMemo,
};
use pv_gis::{PaperRoof, RoofScenario, Site, SolarExtractor};
use pv_model::Topology;
use pv_runtime::Runtime;

fn bench_evaluator(c: &mut Criterion) {
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let dataset = extract_scenario_with(&scenario, Resolution::Smoke, Runtime::from_env());
    let config = FloorplanConfig::paper(Topology::new(8, 4).expect("topology")).expect("config");
    let map = SuitabilityMap::compute(&dataset, &config);
    let plan = greedy_placement_with_map(&dataset, &config, &map).expect("fits");

    let mut group = c.benchmark_group("evaluator_throughput");
    group.bench_with_input(
        BenchmarkId::from_parameter("scalar_reference"),
        &plan,
        |b, plan| {
            b.iter(|| scalar_reference_energy(&dataset, &config, plan));
        },
    );
    for (label, runtime) in [
        ("batched_seq", Runtime::sequential()),
        ("batched_4thr", Runtime::with_threads(4)),
    ] {
        let evaluator = EnergyEvaluator::new(&config).with_runtime(runtime);
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| evaluator.evaluate(&dataset, plan).expect("sized"));
        });
    }

    // The mean-irradiance stage in isolation (no electrical model), to pin
    // the raw kernel speedup free of Amdahl dilution.
    let module_cells: Vec<Vec<pv_geom::CellCoord>> = (0..plan.placement.len())
        .map(|k| plan.placement.cells_of(k).collect())
        .collect();
    group.bench_with_input(
        BenchmarkId::from_parameter("means_scalar"),
        &module_cells,
        |b, cells| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..dataset.num_steps() {
                    for group in cells {
                        acc += group
                            .iter()
                            .map(|&c| dataset.irradiance(c, i).as_w_per_m2())
                            .sum::<f64>()
                            / group.len() as f64;
                    }
                }
                acc
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("means_batched"),
        &module_cells,
        |b, cells| {
            let batch = dataset.batch(cells);
            let mut out = vec![0.0f64; dataset.num_steps() as usize * cells.len()];
            b.iter(|| {
                dataset.mean_irradiance_into(&batch, 0..dataset.num_steps(), &mut out);
                out[0]
            });
        },
    );

    // Anneal-style proposal loop: move one module, re-score. The probe
    // anchors are fixed up front so every relocation succeeds.
    let evaluator = EnergyEvaluator::new(&config).with_runtime(Runtime::sequential());
    let probe = relocation_probe(&dataset, &config, &map, &plan, 32);
    // Both rungs warm the per-anchor memo over the probe cycle first, so
    // the relocation inside the cold rung costs a block copy and the rung
    // isolates the pre-caching re-scoring cost (same setup as the shared
    // `proposal_loop_timings` probe below).
    let memo = TraceMemo::new();
    let warm_context = || {
        let mut ctx = evaluator
            .context_with_memo(&dataset, &plan, &memo)
            .expect("sized");
        for &anchor in &probe {
            ctx.try_move(0, anchor).expect("probed");
            ctx.commit_move();
        }
        ctx
    };
    group.bench_with_input(
        BenchmarkId::from_parameter("proposal_cold"),
        &probe,
        |b, probe| {
            let mut ctx = warm_context();
            let mut e = 0usize;
            b.iter(|| {
                ctx.relocate(0, probe[e % probe.len()]).expect("probed");
                e += 1;
                ctx.evaluate_cold()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("proposal_incremental"),
        &probe,
        |b, probe| {
            let mut ctx = warm_context();
            let mut e = 0usize;
            b.iter(|| {
                ctx.try_move(0, probe[e % probe.len()]).expect("probed");
                e += 1;
                let report = ctx.evaluate();
                ctx.commit_move();
                report
            });
        },
    );
    group.finish();

    // Machine-readable artifact for the CI schema check and the
    // EXPERIMENTS.md perf trajectory (one timed pass even in `--test`
    // mode, so the smoke run still refreshes the file). The proposal
    // rows and the lane-kernel rows share one write — the writer
    // replaces the whole file.
    let test_mode = std::env::args().any(|a| a == "--test");
    let timings = proposal_loop_timings(
        &dataset,
        &config,
        &map,
        &plan,
        if test_mode { 2 } else { 200 },
    );
    let kernels = kernel_probe_timings(&dataset, &config, &plan, if test_mode { 1 } else { 5 });
    let mut records = timings.to_records(&proposal_probe_scale()).to_vec();
    records.extend(kernels.to_records(&proposal_probe_scale()));
    let path =
        write_bench_records("evaluator_throughput", &records).expect("write BENCH_evaluator.json");
    println!(
        "wrote {} (incremental speedup {:.2}x; avx2 lanes {}; kernels:{})",
        path.display(),
        timings.speedup(),
        if pv_gis::lanes::simd_active() {
            "active"
        } else {
            "portable"
        },
        kernels
            .kernels
            .iter()
            .map(|k| format!(" {} {:.2}x", k.name, k.speedup()))
            .collect::<String>()
    );
}

fn bench_extractor(c: &mut Criterion) {
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let clock = Resolution::Smoke.clock();
    let mut group = c.benchmark_group("extractor_threads");
    for (label, runtime) in [
        ("extract_seq", Runtime::sequential()),
        ("extract_4thr", Runtime::with_threads(4)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &clock, |b, &clock| {
            let extractor = SolarExtractor::new(Site::turin(), clock)
                .seed(WEATHER_SEED)
                .runtime(runtime);
            b.iter(|| extractor.extract(&scenario.dsm));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench_evaluator, bench_extractor
}
criterion_main!(benches);
