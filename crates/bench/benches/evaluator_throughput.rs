//! Benchmark of the energy evaluator's batched/parallel refactor — the
//! Sec. V-D runtime story at evaluation granularity.
//!
//! Three rungs on the paper's Roof 2 at the 30-day smoke resolution,
//! N = 32 (the heaviest published topology):
//!
//! 1. `scalar_reference` — the pre-batching triple loop
//!    (steps × modules × cells scalar irradiance composition);
//! 2. `batched_seq` — the batched popcount/SVF-sum kernel on one thread;
//! 3. `batched_4thr` — the same kernel over 4-way time-chunk parallelism
//!    (speedup bounded by the machine's core count; identical results
//!    regardless).
//!
//! Also times extraction (sequential vs 4 threads) for the same reason.
//! Pass `--test` to run each body once (CI keeps the bench green without
//! paying for measurements).
//!
//! Run: `cargo bench -p pv_bench --bench evaluator_throughput`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_bench::{extract_scenario_with, scalar_reference_energy, Resolution, WEATHER_SEED};
use pv_floorplan::{greedy_placement_with_map, EnergyEvaluator, FloorplanConfig, SuitabilityMap};
use pv_gis::{PaperRoof, RoofScenario, Site, SolarExtractor};
use pv_model::Topology;
use pv_runtime::Runtime;

fn bench_evaluator(c: &mut Criterion) {
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let dataset = extract_scenario_with(&scenario, Resolution::Smoke, Runtime::from_env());
    let config = FloorplanConfig::paper(Topology::new(8, 4).expect("topology")).expect("config");
    let map = SuitabilityMap::compute(&dataset, &config);
    let plan = greedy_placement_with_map(&dataset, &config, &map).expect("fits");

    let mut group = c.benchmark_group("evaluator_throughput");
    group.bench_with_input(
        BenchmarkId::from_parameter("scalar_reference"),
        &plan,
        |b, plan| {
            b.iter(|| scalar_reference_energy(&dataset, &config, plan));
        },
    );
    for (label, runtime) in [
        ("batched_seq", Runtime::sequential()),
        ("batched_4thr", Runtime::with_threads(4)),
    ] {
        let evaluator = EnergyEvaluator::new(&config).with_runtime(runtime);
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| evaluator.evaluate(&dataset, plan).expect("sized"));
        });
    }

    // The mean-irradiance stage in isolation (no electrical model), to pin
    // the raw kernel speedup free of Amdahl dilution.
    let module_cells: Vec<Vec<pv_geom::CellCoord>> = (0..plan.placement.len())
        .map(|k| plan.placement.cells_of(k).collect())
        .collect();
    group.bench_with_input(
        BenchmarkId::from_parameter("means_scalar"),
        &module_cells,
        |b, cells| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..dataset.num_steps() {
                    for group in cells {
                        acc += group
                            .iter()
                            .map(|&c| dataset.irradiance(c, i).as_w_per_m2())
                            .sum::<f64>()
                            / group.len() as f64;
                    }
                }
                acc
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("means_batched"),
        &module_cells,
        |b, cells| {
            let batch = dataset.batch(cells);
            let mut out = vec![0.0f64; dataset.num_steps() as usize * cells.len()];
            b.iter(|| {
                dataset.mean_irradiance_into(&batch, 0..dataset.num_steps(), &mut out);
                out[0]
            });
        },
    );
    group.finish();
}

fn bench_extractor(c: &mut Criterion) {
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let clock = Resolution::Smoke.clock();
    let mut group = c.benchmark_group("extractor_threads");
    for (label, runtime) in [
        ("extract_seq", Runtime::sequential()),
        ("extract_4thr", Runtime::with_threads(4)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &clock, |b, &clock| {
            let extractor = SolarExtractor::new(Site::turin(), clock)
                .seed(WEATHER_SEED)
                .runtime(runtime);
            b.iter(|| extractor.extract(&scenario.dsm));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench_evaluator, bench_extractor
}
criterion_main!(benches);
