//! E7 — the runtime claim: "the execution time of the placement algorithm
//! is proportional to the number of valid grid elements and to the number
//! of panels to be placed ... less than 120 s under all configurations".
//!
//! Benchmarks the placement stage (suitability + greedy) across grid sizes
//! and module counts. Run: `cargo bench -p pv-bench --bench placement_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_floorplan::{greedy_placement_with_map, FloorplanConfig, SuitabilityMap};
use pv_gis::{RoofBuilder, Site, SolarDataset, SolarExtractor};
use pv_model::Topology;
use pv_units::{Meters, SimulationClock};

fn dataset_for_width(width_m: f64) -> SolarDataset {
    let roof = RoofBuilder::new(Meters::new(width_m), Meters::new(10.0)).build();
    // A coarse clock keeps per-iteration cost manageable; the suitability
    // stage is linear in steps so scaling shape is preserved.
    SolarExtractor::new(Site::turin(), SimulationClock::days_at_minutes(30, 60))
        .seed(1)
        .extract(&roof)
}

fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("suitability_vs_grid_cells");
    for width_m in [10.0, 20.0, 40.0] {
        let dataset = dataset_for_width(width_m);
        let config = FloorplanConfig::paper(Topology::new(8, 2).unwrap()).unwrap();
        let cells = dataset.valid().count();
        group.bench_with_input(BenchmarkId::from_parameter(cells), &dataset, |b, data| {
            b.iter(|| SuitabilityMap::compute(data, &config));
        });
    }
    group.finish();
}

fn bench_module_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_vs_module_count");
    let dataset = dataset_for_width(40.0);
    for n in [8usize, 16, 32] {
        let config = FloorplanConfig::paper(Topology::new(8, n / 8).unwrap()).unwrap();
        let map = SuitabilityMap::compute(&dataset, &config);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| greedy_placement_with_map(&dataset, &config, &map).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grid_scaling, bench_module_scaling
}
criterion_main!(benches);
