//! Benchmarks of the GIS substrate: horizon-map precomputation and
//! full dataset extraction — the stages that gate end-to-end wall time.
//!
//! Run: `cargo bench -p pv-bench --bench solar_pipeline`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pv_gis::{HorizonMap, Obstacle, RoofBuilder, Site, SolarExtractor};
use pv_units::{Meters, SimulationClock};

fn obstructed_roof(width_m: f64) -> pv_gis::Dsm {
    RoofBuilder::new(Meters::new(width_m), Meters::new(10.0))
        .obstacle(Obstacle::chimney(
            Meters::new(width_m / 2.0),
            Meters::new(2.0),
            Meters::new(0.8),
            Meters::new(0.8),
            Meters::new(1.8),
        ))
        .obstacle(Obstacle::pipe_run(
            Meters::new(1.0),
            Meters::new(6.0),
            Meters::new(width_m / 2.0),
            Meters::new(0.5),
            Meters::new(0.5),
        ))
        .build()
}

fn bench_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("horizon_map");
    for width_m in [10.0, 20.0] {
        let roof = obstructed_roof(width_m);
        let cells = roof.dims().num_cells();
        group.bench_with_input(BenchmarkId::from_parameter(cells), &roof, |b, roof| {
            b.iter(|| HorizonMap::compute(roof, 32));
        });
    }
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_extraction");
    group.sample_size(10);
    for days in [7u32, 30] {
        let roof = obstructed_roof(15.0);
        let clock = SimulationClock::days_at_minutes(days, 60);
        group.bench_with_input(BenchmarkId::from_parameter(days), &clock, |b, &clock| {
            let extractor = SolarExtractor::new(Site::turin(), clock).seed(3);
            b.iter(|| extractor.extract(&roof));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_horizon, bench_extract
}
criterion_main!(benches);
