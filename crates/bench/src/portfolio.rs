//! The portfolio runner: fan a [`ScenarioCorpus`] across the parallel
//! runtime and score every site with the full placer ensemble.
//!
//! Each scenario is one *work unit*: extract its solar dataset, pick the
//! largest topology of a fixed ladder that fits, run the greedy placer,
//! refine with simulated annealing, and — where the search space is small
//! enough — compute the exhaustive optimum. All placer runs on a site
//! share one warm per-anchor [`TraceMemo`], so the annealer and the exact
//! search start from the traces the greedy evaluation already paid for.
//!
//! # Work distribution and determinism
//!
//! Scenarios are distributed over [`Runtime`] workers with
//! [`Runtime::map_chunks`] at granularity 1 — chunk layout and merge
//! order depend only on the corpus length, never the thread count. Inside
//! a work unit everything runs on a *sequential* inner runtime (the
//! parallelism lives at the portfolio level, the natural grain once there
//! are more scenarios than cores). Scenario results are therefore
//! **bit-identical on any thread count**; only [`PortfolioRecord::wall_ms`]
//! (wall-clock, excluded from [`PortfolioRecord::deterministic_line`])
//! varies run to run.
//!
//! The machine-readable artifact `BENCH_portfolio.json` follows the same
//! schema discipline as `BENCH_evaluator.json` (shared `bench` / `scale` /
//! `name` core, validated offline by the `check_bench_json` bin).

use crate::json;
use pv_floorplan::{
    anneal_with_memo, greedy_placement_with_map, optimal_placement_with_memo, AnnealConfig,
    EnergyEvaluator, FloorplanConfig, SuitabilityMap, TraceMemo,
};
use pv_gis::{CorpusPreset, ScenarioCorpus, SiteScenario};
use pv_model::Topology;
use pv_runtime::Runtime;
use pv_units::SimulationClock;
use std::path::PathBuf;
use std::time::Instant;

/// Topology ladder tried largest-first on every scenario (series ×
/// strings). The first entry whose compact and greedy placements both fit
/// the site wins, so big roofs are scored at paper scale while small
/// generated roofs degrade gracefully instead of failing.
pub const TOPOLOGY_LADDER: [(usize, usize); 6] = [(8, 2), (4, 2), (4, 1), (2, 2), (2, 1), (1, 1)];

/// Tuning knobs of a portfolio run.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioOptions {
    /// Simulation clock every scenario is extracted on.
    pub clock: SimulationClock,
    /// Worker pool the corpus is fanned over.
    pub runtime: Runtime,
    /// Proposals per annealing chain.
    pub anneal_iterations: u32,
    /// Node budget for the exhaustive search; instances whose
    /// combination count exceeds it record no exact result.
    pub exact_budget: u64,
    /// Horizon azimuth sectors for extraction (trade precision for
    /// speed at smoke scale).
    pub horizon_sectors: usize,
    /// Upper bound on modules per scenario (caps [`TOPOLOGY_LADDER`]).
    pub max_modules: usize,
}

impl PortfolioOptions {
    /// Full-fidelity settings on the given worker pool: 30-day hourly
    /// clock, 64 horizon sectors, 300-proposal chains, paper-scale
    /// topologies.
    #[must_use]
    pub fn standard(runtime: Runtime) -> Self {
        Self {
            clock: SimulationClock::days_at_minutes(30, 60),
            runtime,
            anneal_iterations: 300,
            exact_budget: 20_000,
            horizon_sectors: 64,
            max_modules: 16,
        }
    }

    /// CI-smoke settings: 2-day 2-hour clock, coarse horizon, short
    /// chains, small topologies. Deterministic like every other setting —
    /// just cheap.
    #[must_use]
    pub fn smoke(runtime: Runtime) -> Self {
        Self {
            clock: SimulationClock::days_at_minutes(2, 120),
            runtime,
            anneal_iterations: 40,
            exact_budget: 2_000,
            horizon_sectors: 16,
            max_modules: 8,
        }
    }
}

/// One scenario's portfolio result — the unit of `BENCH_portfolio.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioRecord {
    /// Scenario display name.
    pub scenario: String,
    /// Roof archetype name (`paper` for the Table I roofs).
    pub archetype: String,
    /// Site latitude, °N.
    pub latitude_deg: f64,
    /// Grid dimensions (width, depth) in cells.
    pub dims: (usize, usize),
    /// Number of placeable cells (the paper's `Ng`).
    pub ng: usize,
    /// Modules per string of the chosen topology (0 when nothing fits).
    pub series: usize,
    /// Parallel strings of the chosen topology (0 when nothing fits).
    pub strings: usize,
    /// Greedy placement energy over the run clock, Wh.
    pub greedy_wh: f64,
    /// Annealed placement energy, Wh (≥ greedy by construction).
    pub anneal_wh: f64,
    /// Exhaustive-optimum energy, Wh, where the search was feasible.
    pub exact_wh: Option<f64>,
    /// Wall-clock of this scenario's work unit, ms. The only
    /// non-deterministic field.
    pub wall_ms: f64,
}

impl PortfolioRecord {
    /// Annealing's relative gain over greedy, percent (placer agreement:
    /// ~0 means the greedy placement was already anneal-optimal).
    #[must_use]
    pub fn anneal_gain_percent(&self) -> f64 {
        if self.greedy_wh <= 0.0 {
            0.0
        } else {
            (self.anneal_wh / self.greedy_wh - 1.0) * 100.0
        }
    }

    /// Greedy's optimality gap against the exhaustive optimum, percent,
    /// where the exact search was feasible.
    #[must_use]
    pub fn exact_gap_percent(&self) -> Option<f64> {
        let exact = self.exact_wh?;
        if exact <= 0.0 {
            return Some(0.0);
        }
        Some((1.0 - self.greedy_wh / exact) * 100.0)
    }

    /// The record's deterministic content (everything but `wall_ms`), for
    /// thread-count-invariance comparisons.
    #[must_use]
    pub fn deterministic_line(&self) -> String {
        format!(
            "{}|{}|{:?}|{}x{}|{}|{}s{}p|{:?}|{:?}|{:?}",
            self.scenario,
            self.archetype,
            self.latitude_deg,
            self.dims.0,
            self.dims.1,
            self.ng,
            self.series,
            self.strings,
            self.greedy_wh,
            self.anneal_wh,
            self.exact_wh,
        )
    }
}

/// Runs the full portfolio: every corpus scenario through extraction,
/// greedy, anneal and (where feasible) exact, one scenario per work unit
/// on `opts.runtime` (see the module docs for the distribution scheme).
///
/// Records are returned in corpus order regardless of thread count.
#[must_use]
pub fn run_portfolio(corpus: &ScenarioCorpus, opts: &PortfolioOptions) -> Vec<PortfolioRecord> {
    opts.runtime
        .map_chunks(corpus.len(), 1, |range| {
            range
                .map(|i| run_scenario(&corpus.scenarios()[i], opts))
                .collect::<Vec<_>>()
        })
        .concat()
}

/// Scores one scenario (one portfolio work unit), sequential inside.
#[must_use]
pub fn run_scenario(scenario: &SiteScenario, opts: &PortfolioOptions) -> PortfolioRecord {
    let t0 = Instant::now();
    let sequential = Runtime::sequential();
    let dataset = scenario
        .extractor(opts.clock)
        .horizon_sectors(opts.horizon_sectors)
        .runtime(sequential)
        .extract(&scenario.dsm);

    let (archetype, latitude_deg, seed) = match &scenario.spec {
        Some(spec) => (
            spec.archetype.name().to_string(),
            spec.latitude_deg,
            spec.seed,
        ),
        None => ("paper".to_string(), scenario.site.latitude().value(), 2018),
    };
    let mut record = PortfolioRecord {
        scenario: scenario.name.clone(),
        archetype,
        latitude_deg,
        dims: (dataset.dims().width(), dataset.dims().height()),
        ng: dataset.valid().count(),
        series: 0,
        strings: 0,
        greedy_wh: 0.0,
        anneal_wh: 0.0,
        exact_wh: None,
        wall_ms: 0.0,
    };

    // Largest ladder topology whose greedy placement fits this site. The
    // suitability map depends only on percentile/module/temperature
    // settings — identical for every ladder entry — so compute it once.
    let map = {
        let probe = Topology::new(1, 1).expect("non-empty");
        let config = FloorplanConfig::paper(probe).expect("paper module fits 20 cm grid");
        SuitabilityMap::compute(&dataset, &config)
    };
    let fitted = TOPOLOGY_LADDER
        .iter()
        .filter(|(m, n)| m * n <= opts.max_modules)
        .find_map(|&(m, n)| {
            let topology = Topology::new(m, n).expect("ladder entries are non-empty");
            let config = FloorplanConfig::paper(topology).expect("paper module fits 20 cm grid");
            let plan = greedy_placement_with_map(&dataset, &config, &map).ok()?;
            Some((config, plan))
        });
    let Some((config, greedy_plan)) = fitted else {
        record.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        return record; // roof too encumbered for even one module
    };
    record.series = config.topology().series();
    record.strings = config.topology().strings();

    // One warm per-anchor memo for every placer run on this site: the
    // greedy evaluation seeds it, the annealing chain and the exact
    // search reuse and extend it (PR 3's trace caches, shared across
    // same-site runs).
    let memo = TraceMemo::new();
    let evaluator = EnergyEvaluator::new(&config).with_runtime(sequential);
    record.greedy_wh = evaluator
        .context_with_memo(&dataset, &greedy_plan, &memo)
        .expect("plan sized by construction")
        .evaluate()
        .energy
        .as_wh();

    let params = AnnealConfig {
        iterations: opts.anneal_iterations,
        seed,
        ..AnnealConfig::default()
    };
    let (_, anneal_energy) =
        anneal_with_memo(&dataset, &config, &greedy_plan, params, sequential, &memo)
            .expect("initial plan is feasible");
    record.anneal_wh = anneal_energy.as_wh();

    record.exact_wh =
        optimal_placement_with_memo(&dataset, &config, opts.exact_budget, sequential, &memo)
            .ok()
            .map(|(_, energy)| energy.as_wh());

    record.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    record
}

/// Path of the portfolio artifact at the repo root
/// (`BENCH_portfolio.json`), independent of the invocation directory.
#[must_use]
pub fn portfolio_json_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_portfolio.json"
    ))
}

/// Renders the `BENCH_portfolio.json` document: a JSON array with one
/// object per scenario, sharing the `bench`/`scale`/`name` core of
/// `BENCH_evaluator.json` plus the portfolio measurements. `exact_wh` /
/// `exact_gap_percent` are omitted where the exhaustive search was
/// infeasible.
#[must_use]
pub fn render_portfolio_json(
    corpus_name: &str,
    scale: &str,
    records: &[PortfolioRecord],
) -> String {
    let items: Vec<json::JsonValue> = records
        .iter()
        .map(|r| {
            // The exact pair appears together or not at all (the schema
            // check enforces exactly that invariant).
            let exact = match (r.exact_wh, r.exact_gap_percent()) {
                (Some(wh), Some(gap)) => Some((wh, gap)),
                _ => None,
            };
            json::ObjectBuilder::new()
                .field("bench", format!("portfolio:{corpus_name}"))
                .field("scale", scale)
                .field("name", r.scenario.as_str())
                .field("archetype", r.archetype.as_str())
                .field("latitude_deg", r.latitude_deg)
                .field("width_cells", r.dims.0)
                .field("depth_cells", r.dims.1)
                .field("ng", r.ng)
                .field("series", r.series)
                .field("strings", r.strings)
                .field("greedy_wh", json::rounded(r.greedy_wh, 3))
                .field("anneal_wh", json::rounded(r.anneal_wh, 3))
                .field(
                    "anneal_gain_percent",
                    json::rounded(r.anneal_gain_percent(), 4),
                )
                .maybe("exact_wh", exact.map(|(wh, _)| json::rounded(wh, 3)))
                .maybe(
                    "exact_gap_percent",
                    exact.map(|(_, gap)| json::rounded(gap, 4)),
                )
                .field("wall_ms", json::rounded(r.wall_ms, 2))
                .build()
        })
        .collect();
    json::render_record_array(&items)
}

/// Writes `BENCH_portfolio.json` at the repo root (see
/// [`render_portfolio_json`]).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_portfolio_records(
    corpus_name: &str,
    scale: &str,
    records: &[PortfolioRecord],
) -> std::io::Result<PathBuf> {
    let path = portfolio_json_path();
    std::fs::write(&path, render_portfolio_json(corpus_name, scale, records))?;
    Ok(path)
}

/// The shared front-end driver behind the `portfolio` bin and
/// `pvplan suite`: builds the preset corpus, runs the portfolio, prints
/// the summary table, and writes the artifact — to `out` when given,
/// otherwise to [`portfolio_json_path`]. Returns the written path.
///
/// Keeping this in one place pins the `scale` string and the
/// run-format-write sequence, so both entry points always emit the same
/// `BENCH_portfolio.json` shape.
///
/// # Errors
///
/// Propagates filesystem errors from writing the artifact.
pub fn drive(
    preset: CorpusPreset,
    seed: u64,
    opts: &PortfolioOptions,
    out: Option<&str>,
) -> std::io::Result<PathBuf> {
    // pvlint: allow(R03): progress narration for the interactive harness; the artifact itself goes to the JSON file
    eprintln!(
        "portfolio: preset {preset} (seed {seed}), {} scenario(s), {} steps, {} thread(s)...",
        preset.scenario_count(),
        opts.clock.num_steps(),
        opts.runtime.threads()
    );
    let t0 = Instant::now();
    let corpus = ScenarioCorpus::preset_with_seed(preset, seed);
    let records = run_portfolio(&corpus, opts);
    print!("{}", format_table(&records));
    let total: f64 = records.iter().map(|r| r.greedy_wh).sum();
    // pvlint: allow(R02): drive() is the body of `pvplan suite`; stdout is its user interface
    println!(
        "{} scenario(s), total greedy energy {:.1} Wh, {:.2} s wall",
        records.len(),
        total,
        t0.elapsed().as_secs_f64()
    );

    let scale = format!(
        "{} preset, {} steps, seed {}",
        preset,
        opts.clock.num_steps(),
        seed
    );
    let path = match out {
        Some(path) => std::fs::write(path, render_portfolio_json(corpus.name(), &scale, &records))
            .map(|()| PathBuf::from(path))?,
        None => write_portfolio_records(corpus.name(), &scale, &records)?,
    };
    println!("wrote {}", path.display()); // pvlint: allow(R02): drive() is the body of `pvplan suite`; stdout is its user interface
    Ok(path)
}

/// Formats the human-readable portfolio summary table printed by the
/// harness binaries.
#[must_use]
pub fn format_table(records: &[PortfolioRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>7} {:>6} {:>12} {:>12} {:>8} {:>8}\n",
        "scenario", "archetype", "lat", "Ng", "greedy Wh", "anneal Wh", "gain %", "ms"
    ));
    for r in records {
        out.push_str(&format!(
            "{:<22} {:>9} {:>7.1} {:>6} {:>12.1} {:>12.1} {:>8.3} {:>8.1}\n",
            r.scenario,
            r.archetype,
            r.latitude_deg,
            r.ng,
            r.greedy_wh,
            r.anneal_wh,
            r.anneal_gain_percent(),
            r.wall_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_gis::synth::ScenarioSpec;

    fn tiny_options(threads: usize) -> PortfolioOptions {
        PortfolioOptions {
            clock: SimulationClock::days_at_minutes(1, 240),
            runtime: Runtime::with_threads(threads),
            anneal_iterations: 6,
            exact_budget: 200,
            horizon_sectors: 8,
            max_modules: 4,
        }
    }

    #[test]
    fn single_scenario_scores_positive_energy() {
        let scenario = ScenarioSpec::generate(2018, 1).build();
        let record = run_scenario(&scenario, &tiny_options(1));
        assert!(record.ng > 0);
        assert!(record.series * record.strings > 0, "ladder found no fit");
        assert!(record.greedy_wh > 0.0);
        assert!(record.anneal_wh >= record.greedy_wh - 1e-9);
        assert!(record.wall_ms > 0.0);
    }

    #[test]
    fn portfolio_records_keep_corpus_order_across_thread_counts() {
        let corpus = ScenarioCorpus::generate("t", 99, 3);
        let seq = run_portfolio(&corpus, &tiny_options(1));
        let par = run_portfolio(&corpus, &tiny_options(3));
        assert_eq!(seq.len(), 3);
        let lines = |rs: &[PortfolioRecord]| {
            rs.iter()
                .map(PortfolioRecord::deterministic_line)
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&seq), lines(&par));
        for (r, s) in seq.iter().zip(corpus.scenarios()) {
            assert_eq!(r.scenario, s.name);
        }
    }

    #[test]
    fn exact_search_fires_on_a_tiny_site_and_bounds_greedy() {
        use pv_gis::{RoofBuilder, Site, SiteScenario, WeatherGenerator};
        use pv_units::Meters;
        // A roof barely larger than two module footprints: few candidate
        // anchors, so C(candidates, 2) fits the node budget.
        let scenario = SiteScenario {
            name: "tiny".into(),
            spec: None,
            dsm: RoofBuilder::new(Meters::new(3.6), Meters::new(1.2)).build(),
            site: Site::turin(),
            weather: WeatherGenerator::new(7),
        };
        let mut opts = tiny_options(1);
        opts.max_modules = 2;
        opts.exact_budget = 100_000;
        let record = run_scenario(&scenario, &opts);
        assert_eq!((record.series, record.strings), (2, 1));
        let exact = record.exact_wh.expect("exhaustive search fits the budget");
        assert!(exact >= record.greedy_wh - 1e-9, "exact is an upper bound");
        assert!(record.exact_gap_percent().unwrap() >= -1e-9);
    }

    #[test]
    fn rendered_json_parses_and_carries_the_shared_core() {
        let corpus = ScenarioCorpus::generate("t", 5, 1);
        let records = run_portfolio(&corpus, &tiny_options(1));
        let doc = render_portfolio_json("t", "tiny", &records);
        let parsed = json::parse(&doc).expect("valid JSON");
        let items = parsed.as_array().unwrap();
        assert_eq!(items.len(), 1);
        let item = &items[0];
        assert_eq!(item.get("bench").unwrap().as_str(), Some("portfolio:t"));
        assert_eq!(item.get("scale").unwrap().as_str(), Some("tiny"));
        assert!(item.get("name").unwrap().as_str().is_some());
        assert!(item.get("greedy_wh").unwrap().as_number().unwrap() >= 0.0);
        assert!(item.get("wall_ms").unwrap().as_number().unwrap() >= 0.0);
    }
}
