//! Shared experiment plumbing for the paper-reproduction harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library hosts the pieces
//! they share: scenario extraction at the paper's resolution or a faster
//! preview resolution, and output-directory handling.

use pv_floorplan::{
    greedy_placement_with_map, traditional_placement_with_map, ComparisonRow, EnergyEvaluator,
    FloorplanConfig, FloorplanResult, SuitabilityMap,
};
use pv_gis::{RoofScenario, Site, SolarDataset, SolarExtractor};
use pv_model::{string_wiring_overhead, ModuleModel, OperatingPoint, Topology};
use pv_runtime::Runtime;
use pv_units::{Amperes, Irradiance, Meters, SimulationClock, Volts, WattHours, Watts};
use std::path::PathBuf;

/// The weather seed shared by all experiments (all three roofs are
/// neighbours and see the same weather, as in the paper).
pub const WEATHER_SEED: u64 = 2018;

/// Resolution of a harness run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The paper's configuration: one year at 15-minute steps.
    Paper,
    /// One year at hourly steps — ~4x faster, same spatial structure.
    Fast,
    /// 30 days at hourly steps — smoke-test scale.
    Smoke,
}

impl Resolution {
    /// Parses from the harness CLI convention: `--fast` / `--smoke`.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--smoke") {
            Self::Smoke
        } else if args.iter().any(|a| a == "--fast") {
            Self::Fast
        } else {
            Self::Paper
        }
    }

    /// The simulation clock for this resolution.
    #[must_use]
    pub fn clock(self) -> SimulationClock {
        match self {
            Self::Paper => SimulationClock::paper(),
            Self::Fast => SimulationClock::year_at_minutes(60),
            Self::Smoke => SimulationClock::days_at_minutes(30, 60),
        }
    }

    /// Human-readable label for report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Paper => "1 year @ 15 min (paper)",
            Self::Fast => "1 year @ 60 min (fast)",
            Self::Smoke => "30 days @ 60 min (smoke)",
        }
    }
}

/// Parses the shared `--threads N` harness flag into a [`Runtime`],
/// falling back to [`Runtime::from_env`] (`PV_THREADS` or the machine's
/// parallelism) when the flag is absent. Every harness binary accepts the
/// flag; results are identical for every setting.
///
/// A malformed value exits with an error rather than being silently
/// ignored — a typo must not invalidate the thread count a measurement
/// run was supposed to pin.
#[must_use]
pub fn runtime_from_args() -> Runtime {
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Runtime::from_env();
    };
    match args.get(i + 1).map(|v| pv_runtime::parse_threads(v)) {
        Some(Some(n)) => Runtime::with_threads(n),
        _ => {
            eprintln!(
                "Error: --threads expects a positive integer, got {:?}",
                args.get(i + 1).map_or("nothing", String::as_str)
            );
            std::process::exit(2);
        }
    }
}

/// Extracts the solar dataset of a paper roof at the given resolution,
/// on [`Runtime::from_env`] workers.
#[must_use]
pub fn extract_scenario(scenario: &RoofScenario, resolution: Resolution) -> SolarDataset {
    extract_scenario_with(scenario, resolution, Runtime::from_env())
}

/// [`extract_scenario`] on an explicit [`Runtime`] (the `--threads` path).
#[must_use]
pub fn extract_scenario_with(
    scenario: &RoofScenario,
    resolution: Resolution,
    runtime: Runtime,
) -> SolarDataset {
    SolarExtractor::new(Site::turin(), resolution.clock())
        .seed(WEATHER_SEED)
        .runtime(runtime)
        .extract(&scenario.dsm)
}

/// Runs the traditional-vs-proposed comparison of one roof for one module
/// count, producing a Table I row.
///
/// # Panics
///
/// Panics when a placement fails on a paper roof (cannot happen for the
/// published `N`; the roofs have ample space).
#[must_use]
pub fn compare_row(
    scenario: &RoofScenario,
    dataset: &SolarDataset,
    n_modules: usize,
) -> ComparisonRow {
    compare_row_with(scenario, dataset, n_modules, Runtime::from_env())
}

/// [`compare_row`] on an explicit [`Runtime`] (the `--threads` path).
///
/// # Panics
///
/// Panics when a placement fails on a paper roof (cannot happen for the
/// published `N`; the roofs have ample space).
#[must_use]
pub fn compare_row_with(
    scenario: &RoofScenario,
    dataset: &SolarDataset,
    n_modules: usize,
    runtime: Runtime,
) -> ComparisonRow {
    let topology = Topology::new(8, n_modules / 8).expect("paper topologies are 8-series");
    let config = FloorplanConfig::paper(topology).expect("paper module aligns to 20 cm grid");
    let map = SuitabilityMap::compute(dataset, &config);
    let traditional = traditional_placement_with_map(dataset, &config, &map)
        .expect("compact block fits the paper roofs");
    let proposed =
        greedy_placement_with_map(dataset, &config, &map).expect("greedy fits the paper roofs");
    let evaluator = EnergyEvaluator::new(&config).with_runtime(runtime);
    let trad_report = evaluator
        .evaluate(dataset, &traditional)
        .expect("sized by construction");
    let prop_report = evaluator
        .evaluate(dataset, &proposed)
        .expect("sized by construction");

    ComparisonRow {
        label: scenario.name(),
        dims: (dataset.dims().width(), dataset.dims().height()),
        ng: dataset.valid().count(),
        n_modules,
        traditional: trad_report.energy,
        proposed: prop_report.energy,
        published_gain_percent: scenario.roof.published_gain_percent(n_modules),
    }
}

/// The pre-batching scalar reference evaluation: recompute the full
/// per-cell irradiance composition inside a steps × modules × cells triple
/// loop, exactly as `EnergyEvaluator` did before the batched kernel.
///
/// Kept as the "before" baseline the `evaluator_throughput` bench and
/// `diag --timings` pin the batched kernel's speedup against (EXPERIMENTS
/// Sec. V-D). Agrees with the evaluator up to floating-point association.
///
/// # Panics
///
/// Panics when the plan's module count differs from the configured
/// topology.
#[must_use]
pub fn scalar_reference_energy(
    dataset: &SolarDataset,
    config: &FloorplanConfig,
    plan: &FloorplanResult,
) -> WattHours {
    let topology = config.topology();
    let n_modules = topology.num_modules();
    assert_eq!(plan.placement.len(), n_modules, "plan/topology mismatch");
    let module = config.module();
    let wiring = config.wiring();

    let mut strings: Vec<Vec<usize>> = vec![Vec::new(); topology.strings()];
    for (k, &s) in plan.string_of.iter().enumerate() {
        strings[s].push(k);
    }
    let module_cells: Vec<Vec<pv_geom::CellCoord>> = (0..n_modules)
        .map(|k| plan.placement.cells_of(k).collect())
        .collect();
    let string_extra: Vec<Meters> = strings
        .iter()
        .map(|mods| {
            let centers: Vec<pv_geom::Point> =
                mods.iter().map(|&k| plan.placement.center(k)).collect();
            string_wiring_overhead(&centers, wiring).extra_length
        })
        .collect();

    let mut gross = 0.0f64;
    let mut loss = 0.0f64;
    let mut ops: Vec<OperatingPoint> = vec![OperatingPoint::default(); n_modules];
    for i in 0..dataset.num_steps() {
        let cond = dataset.conditions(i);
        if !cond.sun_up {
            continue;
        }
        for k in 0..n_modules {
            let cells = &module_cells[k];
            let mean_g = cells
                .iter()
                .map(|&c| dataset.irradiance(c, i).as_w_per_m2())
                .sum::<f64>()
                / cells.len() as f64;
            ops[k] = module.operating_point(Irradiance::from_w_per_m2(mean_g), cond.ambient);
        }
        let mut v_panel = f64::INFINITY;
        let mut i_panel = 0.0f64;
        let mut step_loss = 0.0f64;
        for (j, mods) in strings.iter().enumerate() {
            let v: f64 = mods.iter().map(|&k| ops[k].voltage.value()).sum();
            let i_str = mods
                .iter()
                .map(|&k| ops[k].current.value())
                .fold(f64::INFINITY, f64::min);
            v_panel = v_panel.min(v);
            i_panel += i_str;
            step_loss += wiring
                .power_loss(string_extra[j], Amperes::new(i_str))
                .as_watts();
        }
        let p_panel = (Volts::new(v_panel) * Amperes::new(i_panel)).as_watts();
        gross += p_panel;
        loss += step_loss.min(p_panel);
    }
    Watts::new(gross - loss).over(dataset.step_duration())
}

/// Directory where harness binaries write figures (`target/figures`).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_gis::{PaperRoof, RoofScenario};

    #[test]
    fn smoke_row_has_positive_energies() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = extract_scenario(&scenario, Resolution::Smoke);
        let row = compare_row(&scenario, &dataset, 16);
        assert!(row.traditional.as_wh() > 0.0);
        assert!(row.proposed.as_wh() > 0.0);
        assert_eq!(row.n_modules, 16);
        assert_eq!(row.ng, scenario.dsm.valid().count());
    }

    #[test]
    fn scalar_reference_agrees_with_batched_evaluator() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = extract_scenario(&scenario, Resolution::Smoke);
        let config = FloorplanConfig::paper(Topology::new(8, 2).unwrap()).unwrap();
        let map = SuitabilityMap::compute(&dataset, &config);
        let plan = greedy_placement_with_map(&dataset, &config, &map).unwrap();
        let batched = EnergyEvaluator::new(&config)
            .evaluate(&dataset, &plan)
            .unwrap()
            .energy;
        let reference = scalar_reference_energy(&dataset, &config, &plan);
        let rel = (batched.as_wh() - reference.as_wh()).abs() / reference.as_wh();
        assert!(rel < 1e-9, "batched {batched:?} vs reference {reference:?}");
    }

    #[test]
    fn resolution_clocks() {
        assert_eq!(Resolution::Paper.clock().num_steps(), 35_040);
        assert_eq!(Resolution::Fast.clock().num_steps(), 8_760);
        assert_eq!(Resolution::Smoke.clock().num_steps(), 720);
    }
}
