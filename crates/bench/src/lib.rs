//! Shared experiment plumbing for the paper-reproduction harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library hosts the pieces
//! they share: scenario extraction at the paper's resolution or a faster
//! preview resolution, and output-directory handling.

use pv_floorplan::{
    greedy_placement_with_map, traditional_placement_with_map, ComparisonRow, EnergyEvaluator,
    FloorplanConfig, SuitabilityMap,
};
use pv_gis::{RoofScenario, Site, SolarDataset, SolarExtractor};
use pv_model::Topology;
use pv_units::SimulationClock;
use std::path::PathBuf;

/// The weather seed shared by all experiments (all three roofs are
/// neighbours and see the same weather, as in the paper).
pub const WEATHER_SEED: u64 = 2018;

/// Resolution of a harness run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The paper's configuration: one year at 15-minute steps.
    Paper,
    /// One year at hourly steps — ~4x faster, same spatial structure.
    Fast,
    /// 30 days at hourly steps — smoke-test scale.
    Smoke,
}

impl Resolution {
    /// Parses from the harness CLI convention: `--fast` / `--smoke`.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--smoke") {
            Self::Smoke
        } else if args.iter().any(|a| a == "--fast") {
            Self::Fast
        } else {
            Self::Paper
        }
    }

    /// The simulation clock for this resolution.
    #[must_use]
    pub fn clock(self) -> SimulationClock {
        match self {
            Self::Paper => SimulationClock::paper(),
            Self::Fast => SimulationClock::year_at_minutes(60),
            Self::Smoke => SimulationClock::days_at_minutes(30, 60),
        }
    }

    /// Human-readable label for report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Paper => "1 year @ 15 min (paper)",
            Self::Fast => "1 year @ 60 min (fast)",
            Self::Smoke => "30 days @ 60 min (smoke)",
        }
    }
}

/// Extracts the solar dataset of a paper roof at the given resolution.
#[must_use]
pub fn extract_scenario(scenario: &RoofScenario, resolution: Resolution) -> SolarDataset {
    SolarExtractor::new(Site::turin(), resolution.clock())
        .seed(WEATHER_SEED)
        .extract(&scenario.dsm)
}

/// Runs the traditional-vs-proposed comparison of one roof for one module
/// count, producing a Table I row.
///
/// # Panics
///
/// Panics when a placement fails on a paper roof (cannot happen for the
/// published `N`; the roofs have ample space).
#[must_use]
pub fn compare_row(
    scenario: &RoofScenario,
    dataset: &SolarDataset,
    n_modules: usize,
) -> ComparisonRow {
    let topology = Topology::new(8, n_modules / 8).expect("paper topologies are 8-series");
    let config = FloorplanConfig::paper(topology).expect("paper module aligns to 20 cm grid");
    let map = SuitabilityMap::compute(dataset, &config);
    let traditional = traditional_placement_with_map(dataset, &config, &map)
        .expect("compact block fits the paper roofs");
    let proposed =
        greedy_placement_with_map(dataset, &config, &map).expect("greedy fits the paper roofs");
    let evaluator = EnergyEvaluator::new(&config);
    let trad_report = evaluator
        .evaluate(dataset, &traditional)
        .expect("sized by construction");
    let prop_report = evaluator
        .evaluate(dataset, &proposed)
        .expect("sized by construction");

    ComparisonRow {
        label: scenario.name(),
        dims: (dataset.dims().width(), dataset.dims().height()),
        ng: dataset.valid().count(),
        n_modules,
        traditional: trad_report.energy,
        proposed: prop_report.energy,
        published_gain_percent: scenario.roof.published_gain_percent(n_modules),
    }
}

/// Directory where harness binaries write figures (`target/figures`).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_gis::{PaperRoof, RoofScenario};

    #[test]
    fn smoke_row_has_positive_energies() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = extract_scenario(&scenario, Resolution::Smoke);
        let row = compare_row(&scenario, &dataset, 16);
        assert!(row.traditional.as_wh() > 0.0);
        assert!(row.proposed.as_wh() > 0.0);
        assert_eq!(row.n_modules, 16);
        assert_eq!(row.ng, scenario.dsm.valid().count());
    }

    #[test]
    fn resolution_clocks() {
        assert_eq!(Resolution::Paper.clock().num_steps(), 35_040);
        assert_eq!(Resolution::Fast.clock().num_steps(), 8_760);
        assert_eq!(Resolution::Smoke.clock().num_steps(), 720);
    }
}
