//! Shared experiment plumbing for the paper-reproduction harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library hosts the pieces
//! they share: scenario extraction at the paper's resolution or a faster
//! preview resolution, and output-directory handling.

use pv_floorplan::{
    greedy_placement_with_map, module_lane_params, traditional_placement_with_map, ComparisonRow,
    EnergyEvaluator, FloorplanConfig, FloorplanResult, SuitabilityMap, TraceMemo,
};
use pv_geom::CellCoord;
use pv_gis::{lanes, RoofScenario, Site, SolarDataset, SolarExtractor};
use pv_model::{string_wiring_overhead, ModuleModel, OperatingPoint, Topology};
use pv_runtime::Runtime;
use pv_units::{Amperes, Irradiance, Meters, SimulationClock, Volts, WattHours, Watts};
use std::path::PathBuf;
use std::time::Instant;

/// Shared offline JSON reader/writer — a re-export of [`pv_json`], the
/// extracted home of what used to be the private `pv_bench::json` module
/// (the placement server is the second consumer).
pub use pv_json as json;

pub mod portfolio;

/// The weather seed shared by all experiments (all three roofs are
/// neighbours and see the same weather, as in the paper).
pub const WEATHER_SEED: u64 = 2018;

/// Resolution of a harness run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The paper's configuration: one year at 15-minute steps.
    Paper,
    /// One year at hourly steps — ~4x faster, same spatial structure.
    Fast,
    /// 30 days at hourly steps — smoke-test scale.
    Smoke,
}

impl Resolution {
    /// Parses from the harness CLI convention: `--fast` / `--smoke`.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--smoke") {
            Self::Smoke
        } else if args.iter().any(|a| a == "--fast") {
            Self::Fast
        } else {
            Self::Paper
        }
    }

    /// The simulation clock for this resolution.
    #[must_use]
    pub fn clock(self) -> SimulationClock {
        match self {
            Self::Paper => SimulationClock::paper(),
            Self::Fast => SimulationClock::year_at_minutes(60),
            Self::Smoke => SimulationClock::days_at_minutes(30, 60),
        }
    }

    /// Human-readable label for report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Paper => "1 year @ 15 min (paper)",
            Self::Fast => "1 year @ 60 min (fast)",
            Self::Smoke => "30 days @ 60 min (smoke)",
        }
    }
}

/// Parses the shared `--threads N` harness flag into a [`Runtime`],
/// falling back to [`Runtime::from_env`] (`PV_THREADS` or the machine's
/// parallelism) when the flag is absent. Every harness binary accepts the
/// flag; results are identical for every setting.
///
/// A malformed value exits with an error rather than being silently
/// ignored — a typo must not invalidate the thread count a measurement
/// run was supposed to pin.
#[must_use]
pub fn runtime_from_args() -> Runtime {
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Runtime::from_env();
    };
    match args.get(i + 1).map(|v| pv_runtime::parse_threads(v)) {
        Some(Some(n)) => Runtime::with_threads(n),
        _ => {
            // pvlint: allow(R03): this IS the CLI error path, shared by every bench bin
            eprintln!(
                "Error: --threads expects a positive integer, got {:?}",
                args.get(i + 1).map_or("nothing", String::as_str)
            );
            // Exit 1 like every other workspace CLI error path (the PR 1
            // convention): bad flags are user errors, not crashes.
            std::process::exit(1);
        }
    }
}

/// Parsed form of the shared harness CLI
/// (`[--paper|--fast|--smoke] [--threads N]` plus bin-specific boolean
/// flags). Built by [`parse_harness_args`]; pure data so bins can
/// unit-test their argument handling without spawning a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Explicit resolution flag, if any (bins pick their own default).
    pub resolution: Option<Resolution>,
    /// Explicit `--threads N`, if any.
    pub threads: Option<usize>,
    /// Bin-specific boolean flags that were present, verbatim.
    pub extra: Vec<String>,
}

impl HarnessArgs {
    /// The runtime this invocation pinned: `--threads N` when given,
    /// otherwise [`Runtime::from_env`].
    #[must_use]
    pub fn runtime(&self) -> Runtime {
        self.threads
            .map_or_else(Runtime::from_env, Runtime::with_threads)
    }

    /// The resolution, falling back to the bin's default.
    #[must_use]
    pub fn resolution_or(&self, default: Resolution) -> Resolution {
        self.resolution.unwrap_or(default)
    }

    /// Whether a bin-specific flag (from `extra_flags`) was passed.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.extra.iter().any(|present| present == flag)
    }
}

/// Pure parser behind the harness bins' shared CLI, per the workspace
/// error-path convention: parse failures are `Err` strings the bin
/// prints as `Error: …` before exiting 1 — never panics, and unknown
/// flags are rejected instead of silently ignored. `extra_flags` lists
/// the bin's own boolean flags (e.g. `--timings`).
///
/// # Errors
///
/// A message naming the offending flag or `--threads` value.
pub fn parse_harness_args(args: &[String], extra_flags: &[&str]) -> Result<HarnessArgs, String> {
    let mut parsed = HarnessArgs {
        resolution: None,
        threads: None,
        extra: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--paper" => parsed.resolution = Some(Resolution::Paper),
            "--fast" => parsed.resolution = Some(Resolution::Fast),
            "--smoke" => parsed.resolution = Some(Resolution::Smoke),
            "--threads" => {
                let value = it
                    .next()
                    .ok_or("--threads expects a positive integer, got nothing")?;
                let n = pv_runtime::parse_threads(value).ok_or_else(|| {
                    format!("--threads expects a positive integer, got '{value}'")
                })?;
                parsed.threads = Some(n);
            }
            other if extra_flags.contains(&other) => parsed.extra.push(other.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

/// Extracts the solar dataset of a paper roof at the given resolution,
/// on [`Runtime::from_env`] workers.
#[must_use]
pub fn extract_scenario(scenario: &RoofScenario, resolution: Resolution) -> SolarDataset {
    extract_scenario_with(scenario, resolution, Runtime::from_env())
}

/// [`extract_scenario`] on an explicit [`Runtime`] (the `--threads` path).
#[must_use]
pub fn extract_scenario_with(
    scenario: &RoofScenario,
    resolution: Resolution,
    runtime: Runtime,
) -> SolarDataset {
    SolarExtractor::new(Site::turin(), resolution.clock())
        .seed(WEATHER_SEED)
        .runtime(runtime)
        .extract(&scenario.dsm)
}

/// Runs the traditional-vs-proposed comparison of one roof for one module
/// count, producing a Table I row.
///
/// # Panics
///
/// Panics when a placement fails on a paper roof (cannot happen for the
/// published `N`; the roofs have ample space).
#[must_use]
pub fn compare_row(
    scenario: &RoofScenario,
    dataset: &SolarDataset,
    n_modules: usize,
) -> ComparisonRow {
    compare_row_with(scenario, dataset, n_modules, Runtime::from_env())
}

/// [`compare_row`] on an explicit [`Runtime`] (the `--threads` path).
///
/// # Panics
///
/// Panics when a placement fails on a paper roof (cannot happen for the
/// published `N`; the roofs have ample space).
#[must_use]
pub fn compare_row_with(
    scenario: &RoofScenario,
    dataset: &SolarDataset,
    n_modules: usize,
    runtime: Runtime,
) -> ComparisonRow {
    let topology = Topology::new(8, n_modules / 8).expect("paper topologies are 8-series");
    let config = FloorplanConfig::paper(topology).expect("paper module aligns to 20 cm grid");
    let map = SuitabilityMap::compute(dataset, &config);
    let traditional = traditional_placement_with_map(dataset, &config, &map)
        .expect("compact block fits the paper roofs");
    let proposed =
        greedy_placement_with_map(dataset, &config, &map).expect("greedy fits the paper roofs");
    let evaluator = EnergyEvaluator::new(&config).with_runtime(runtime);
    let trad_report = evaluator
        .evaluate(dataset, &traditional)
        .expect("sized by construction");
    let prop_report = evaluator
        .evaluate(dataset, &proposed)
        .expect("sized by construction");

    ComparisonRow {
        label: scenario.name(),
        dims: (dataset.dims().width(), dataset.dims().height()),
        ng: dataset.valid().count(),
        n_modules,
        traditional: trad_report.energy,
        proposed: prop_report.energy,
        published_gain_percent: scenario.roof.published_gain_percent(n_modules),
    }
}

/// The pre-batching scalar reference evaluation: recompute the full
/// per-cell irradiance composition inside a steps × modules × cells triple
/// loop, exactly as `EnergyEvaluator` did before the batched kernel.
///
/// Kept as the "before" baseline the `evaluator_throughput` bench and
/// `diag --timings` pin the batched kernel's speedup against (EXPERIMENTS
/// Sec. V-D). Agrees with the evaluator up to floating-point association.
///
/// # Panics
///
/// Panics when the plan's module count differs from the configured
/// topology.
#[must_use]
pub fn scalar_reference_energy(
    dataset: &SolarDataset,
    config: &FloorplanConfig,
    plan: &FloorplanResult,
) -> WattHours {
    let topology = config.topology();
    let n_modules = topology.num_modules();
    assert_eq!(plan.placement.len(), n_modules, "plan/topology mismatch");
    let module = config.module();
    let wiring = config.wiring();

    let mut strings: Vec<Vec<usize>> = vec![Vec::new(); topology.strings()];
    for (k, &s) in plan.string_of.iter().enumerate() {
        strings[s].push(k);
    }
    let module_cells: Vec<Vec<pv_geom::CellCoord>> = (0..n_modules)
        .map(|k| plan.placement.cells_of(k).collect())
        .collect();
    let string_extra: Vec<Meters> = strings
        .iter()
        .map(|mods| {
            let centers: Vec<pv_geom::Point> =
                mods.iter().map(|&k| plan.placement.center(k)).collect();
            string_wiring_overhead(&centers, wiring).extra_length
        })
        .collect();

    let mut gross = 0.0f64;
    let mut loss = 0.0f64;
    let mut ops: Vec<OperatingPoint> = vec![OperatingPoint::default(); n_modules];
    for i in 0..dataset.num_steps() {
        let cond = dataset.conditions(i);
        if !cond.sun_up {
            continue;
        }
        for k in 0..n_modules {
            let cells = &module_cells[k];
            let mean_g = cells
                .iter()
                .map(|&c| dataset.irradiance(c, i).as_w_per_m2())
                .sum::<f64>()
                / cells.len() as f64;
            ops[k] = module.operating_point(Irradiance::from_w_per_m2(mean_g), cond.ambient);
        }
        let mut v_panel = f64::INFINITY;
        let mut i_panel = 0.0f64;
        let mut step_loss = 0.0f64;
        for (j, mods) in strings.iter().enumerate() {
            let v: f64 = mods.iter().map(|&k| ops[k].voltage.value()).sum();
            let i_str = mods
                .iter()
                .map(|&k| ops[k].current.value())
                .fold(f64::INFINITY, f64::min);
            v_panel = v_panel.min(v);
            i_panel += i_str;
            step_loss += wiring
                .power_loss(string_extra[j], Amperes::new(i_str))
                .as_watts();
        }
        let p_panel = (Volts::new(v_panel) * Amperes::new(i_panel)).as_watts();
        gross += p_panel;
        loss += step_loss.min(p_panel);
    }
    Watts::new(gross - loss).over(dataset.step_duration())
}

/// One machine-readable benchmark measurement for `BENCH_evaluator.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Name of the specific rung (e.g. `proposal_incremental`).
    pub name: String,
    /// Human-readable workload scale (clock resolution, module count).
    pub scale: String,
    /// Mean wall-clock time per evaluation, nanoseconds.
    pub ns_per_eval: f64,
    /// Speedup relative to the cold-evaluate rung of the same run
    /// (`1.0` for the cold rung itself).
    pub speedup_vs_cold: f64,
}

/// Path of the machine-readable benchmark artifact at the repo root
/// (`BENCH_evaluator.json`), independent of the invocation directory.
#[must_use]
pub fn bench_json_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_evaluator.json"
    ))
}

/// Path of the server load-test artifact at the repo root
/// (`BENCH_server.json`, written by the `loadgen` bin), independent of
/// the invocation directory.
#[must_use]
pub fn server_json_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_server.json"
    ))
}

/// Writes the benchmark artifact consumed by the CI schema check and the
/// EXPERIMENTS.md perf trajectory: a JSON array of objects with keys
/// `bench`, `scale`, `name`, `ns_per_eval`, `speedup_vs_cold`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_records(bench: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    let path = bench_json_path();
    std::fs::write(&path, render_bench_records(bench, records))?;
    Ok(path)
}

/// Renders the `BENCH_evaluator.json` document (see
/// [`write_bench_records`]) through the shared [`json`] writer.
///
/// Non-finite measurements are rendered verbatim (`NaN`/`inf`), which is
/// not valid JSON — deliberately, so a broken measurement makes the CI
/// schema check fail instead of being laundered into a plausible number.
#[must_use]
pub fn render_bench_records(bench: &str, records: &[BenchRecord]) -> String {
    let items: Vec<json::JsonValue> = records
        .iter()
        .map(|r| {
            json::ObjectBuilder::new()
                .field("bench", bench)
                .field("scale", r.scale.as_str())
                .field("name", r.name.as_str())
                .field("ns_per_eval", json::rounded(r.ns_per_eval, 1))
                .field("speedup_vs_cold", json::rounded(r.speedup_vs_cold, 3))
                .build()
        })
        .collect();
    json::render_record_array(&items)
}

/// Wall-clock results of [`proposal_loop_timings`].
#[derive(Clone, Copy, Debug)]
pub struct ProposalTimings {
    /// ns per proposal on the cold path (relocate + `evaluate_cold`, the
    /// pre-caching full re-integration).
    pub cold_ns_per_eval: f64,
    /// ns per proposal on the incremental path (`try_move` + cached
    /// re-score, per-anchor memo warm).
    pub incremental_ns_per_eval: f64,
}

impl ProposalTimings {
    /// Cold / incremental — the headline delta-evaluation speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.cold_ns_per_eval / self.incremental_ns_per_eval.max(1e-9)
    }

    /// The two `BENCH_evaluator.json` records of this measurement — the
    /// single source of the artifact rows written by the
    /// `evaluator_throughput` bench and `diag --timings`.
    #[must_use]
    pub fn to_records(&self, scale: &str) -> [BenchRecord; 2] {
        [
            BenchRecord {
                name: "proposal_cold".into(),
                scale: scale.to_string(),
                ns_per_eval: self.cold_ns_per_eval,
                speedup_vs_cold: 1.0,
            },
            BenchRecord {
                name: "proposal_incremental".into(),
                scale: scale.to_string(),
                ns_per_eval: self.incremental_ns_per_eval,
                speedup_vs_cold: self.speedup(),
            },
        ]
    }
}

/// The workload label of the proposal-loop probe (`BENCH_evaluator.json`
/// `scale` field): the smoke clock at the paper's heaviest topology.
#[must_use]
pub fn proposal_probe_scale() -> String {
    format!("{}, N=32", Resolution::Smoke.label())
}

/// One lane-vs-scalar timing of a kernel the SoA refactor rebuilt.
#[derive(Clone, Copy, Debug)]
pub struct KernelTiming {
    /// `BENCH_evaluator.json` record name (`kernel_…`).
    pub name: &'static str,
    /// ns per full pass of the lane-shaped kernel.
    pub lane_ns_per_eval: f64,
    /// ns per full pass of the scalar reference shape it replaced.
    pub scalar_ns_per_eval: f64,
}

impl KernelTiming {
    /// Scalar / lane — how much the lane shape buys at this workload.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.scalar_ns_per_eval / self.lane_ns_per_eval.max(1e-9)
    }
}

/// Lane-vs-scalar timings of the three hot loops the `pv_gis::lanes`
/// refactor rebuilt, produced by [`kernel_probe_timings`] and recorded
/// as `kernel_*` rows in `BENCH_evaluator.json` (the CI schema check
/// rejects any such row whose speedup drops below 1).
#[derive(Clone, Debug)]
pub struct KernelTimings {
    /// One entry per probed kernel, in presentation order.
    pub kernels: Vec<KernelTiming>,
}

impl KernelTimings {
    /// The `BENCH_evaluator.json` rows of this probe. `ns_per_eval` is
    /// the lane-path time; `speedup_vs_cold` is the lane speedup over
    /// the kernel's own scalar reference shape (its "cold" predecessor).
    #[must_use]
    pub fn to_records(&self, scale: &str) -> Vec<BenchRecord> {
        self.kernels
            .iter()
            .map(|k| BenchRecord {
                name: k.name.to_string(),
                scale: scale.to_string(),
                ns_per_eval: k.lane_ns_per_eval,
                speedup_vs_cold: k.speedup(),
            })
            .collect()
    }
}

/// Times the three rebuilt kernels against the scalar shapes they
/// replaced, on the given placement's real traces — single-threaded, so
/// the numbers isolate loop shape rather than parallelism:
///
/// 1. `kernel_irradiance_census` — the branch-free masked-popcount /
///    beam-lane mean-irradiance kernel vs the per-cell scalar
///    irradiance recomposition;
/// 2. `kernel_fused_iv` — the fused per-module means + lane
///    operating-point sweep vs the scalar per-(step, group) path it
///    replaced (per-cell recomposition + unit-typed per-step model);
/// 3. `kernel_string_agg` — member-outer elementwise `add_assign` /
///    `min_assign` folds vs the step-outer member-inner loop.
///
/// `budget` scales repetition counts (1 = single pass per kernel, the
/// bench `--test` mode; larger values take the minimum over batches for
/// stable numbers).
///
/// # Panics
///
/// Panics when the plan does not match the config's topology.
#[must_use]
pub fn kernel_probe_timings(
    dataset: &SolarDataset,
    config: &FloorplanConfig,
    plan: &FloorplanResult,
    budget: usize,
) -> KernelTimings {
    let topology = config.topology();
    let n_modules = topology.num_modules();
    assert_eq!(plan.placement.len(), n_modules, "plan/topology mismatch");
    let num_steps = dataset.num_steps();
    let n = num_steps as usize;
    let module_cells: Vec<Vec<CellCoord>> = (0..n_modules)
        .map(|k| plan.placement.cells_of(k).collect())
        .collect();
    let batch = dataset.batch(&module_cells);
    let module = config.module();
    let iv = module_lane_params(module);
    let ambient: Vec<f64> = (0..num_steps)
        .map(|i| dataset.conditions(i).ambient.as_celsius())
        .collect();
    let budget = budget.max(1);
    // Always at least three batches — the CI schema check gates on the
    // recorded speedups, so even the bench's `--test` smoke pass must
    // produce noise-resistant numbers.
    let batches = 3;

    // Minimum over batches of `reps` passes — the standard microbench
    // noise floor: the fastest batch is the one least perturbed.
    let time = |reps: usize, body: &mut dyn FnMut()| -> f64 {
        body(); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..batches {
            let t0 = Instant::now();
            for _ in 0..reps {
                body();
            }
            best = best.min(t0.elapsed().as_secs_f64() / reps as f64 * 1e9);
        }
        best
    };

    // 1. Irradiance census, all modules × all steps.
    let mut means = vec![0.0f64; n * n_modules];
    let census_lane = time(budget, &mut || {
        dataset.mean_irradiance_into(&batch, 0..num_steps, &mut means);
        std::hint::black_box(&means);
    });
    let census_scalar = time(budget, &mut || {
        for i in 0..num_steps {
            let sun_up = dataset.conditions(i).sun_up;
            for (k, cells) in module_cells.iter().enumerate() {
                means[i as usize * n_modules + k] = if sun_up {
                    cells
                        .iter()
                        .map(|&c| dataset.irradiance(c, i).as_w_per_m2())
                        .sum::<f64>()
                        / cells.len() as f64
                } else {
                    0.0
                };
            }
        }
        std::hint::black_box(&means);
    });

    // 2. Per-module trace refresh: fused means + lane IV sweep vs the
    // scalar per-(step, group) path it replaced — per-cell irradiance
    // recomposition and the unit-typed per-step operating point, the
    // same shape as `scalar_reference_energy`'s inner loop.
    let mut volts = vec![vec![0.0f64; n]; n_modules];
    let mut amps = vec![vec![0.0f64; n]; n_modules];
    let mut one = vec![0.0f64; n];
    let fused_lane = time(4 * budget, &mut || {
        for k in 0..n_modules {
            dataset.mean_irradiance_group_into(&batch, k, 0..num_steps, &mut one);
            lanes::operating_points(&iv, &one, &ambient, &mut volts[k], &mut amps[k]);
        }
        std::hint::black_box((&volts, &amps));
    });
    let fused_scalar = time(4 * budget, &mut || {
        for (k, cells) in module_cells.iter().enumerate() {
            for i in 0..num_steps {
                let cond = dataset.conditions(i);
                let (v, a) = if cond.sun_up {
                    let mean_g = cells
                        .iter()
                        .map(|&c| dataset.irradiance(c, i).as_w_per_m2())
                        .sum::<f64>()
                        / cells.len() as f64;
                    let op =
                        module.operating_point(Irradiance::from_w_per_m2(mean_g), cond.ambient);
                    (op.voltage.value(), op.current.value())
                } else {
                    (0.0, 0.0)
                };
                volts[k][i as usize] = v;
                amps[k][i as usize] = a;
            }
        }
        std::hint::black_box((&volts, &amps));
    });

    // 3. String aggregation over the traces just built.
    let mut strings: Vec<Vec<usize>> = vec![Vec::new(); topology.strings()];
    for (k, &s) in plan.string_of.iter().enumerate() {
        strings[s].push(k);
    }
    let mut v_sum = vec![0.0f64; n];
    let mut i_min = vec![0.0f64; n];
    let agg_lane = time(50 * budget, &mut || {
        for mods in &strings {
            v_sum.fill(0.0);
            i_min.fill(f64::INFINITY);
            for &k in mods {
                lanes::add_assign(&mut v_sum, &volts[k]);
                lanes::min_assign(&mut i_min, &amps[k]);
            }
            std::hint::black_box((&v_sum, &i_min));
        }
    });
    let agg_scalar = time(50 * budget, &mut || {
        for mods in &strings {
            for i in 0..n {
                let mut vs = 0.0f64;
                let mut im = f64::INFINITY;
                for &k in mods {
                    vs += volts[k][i];
                    im = im.min(amps[k][i]);
                }
                v_sum[i] = vs;
                i_min[i] = im;
            }
            std::hint::black_box((&v_sum, &i_min));
        }
    });

    KernelTimings {
        kernels: vec![
            KernelTiming {
                name: "kernel_irradiance_census",
                lane_ns_per_eval: census_lane,
                scalar_ns_per_eval: census_scalar,
            },
            KernelTiming {
                name: "kernel_fused_iv",
                lane_ns_per_eval: fused_lane,
                scalar_ns_per_eval: fused_scalar,
            },
            KernelTiming {
                name: "kernel_string_agg",
                lane_ns_per_eval: agg_lane,
                scalar_ns_per_eval: agg_scalar,
            },
        ],
    }
}

/// Builds the probe cycle of an anneal-style proposal loop: up to
/// `take` feasible anchors module 0 can relocate to. Only module 0 ever
/// moves during the loops, so feasibility against modules `1..N` is
/// invariant and every probed relocation succeeds from any loop state.
///
/// # Panics
///
/// Panics when the plan does not match the config's topology or no
/// feasible relocation anchor exists (cannot happen on the paper roofs).
#[must_use]
pub fn relocation_probe(
    dataset: &SolarDataset,
    config: &FloorplanConfig,
    map: &SuitabilityMap,
    plan: &FloorplanResult,
    take: usize,
) -> Vec<CellCoord> {
    // Feasibility is pure geometry: probe a placement clone directly
    // instead of paying an evaluation context's trace machinery.
    let mut placement = plan.placement.clone();
    let probe: Vec<CellCoord> = map
        .anchor_scores(config.footprint())
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .map(|(c, _)| c)
        .filter(|&a| match placement.try_relocate(0, a, dataset.valid()) {
            Ok(old) => {
                placement
                    .try_relocate(0, old, dataset.valid())
                    .expect("undoing a probe move is always feasible");
                true
            }
            Err(_) => false,
        })
        .take(take)
        .collect();
    assert!(!probe.is_empty(), "no feasible relocation anchor");
    probe
}

/// Times an anneal-style proposal loop (move one module, re-score) on the
/// cold and incremental evaluation paths, single-threaded — the Sec. V-D
/// "candidate evaluation cost" probe whose numbers go into
/// `BENCH_evaluator.json` and EXPERIMENTS.md.
///
/// Both loops perform one successful relocation plus one full
/// `EnergyReport` per iteration, cycling module 0 through up to 32
/// feasible anchors ([`relocation_probe`], so every move succeeds). The
/// cold loop re-scores with [`EvaluationContext::evaluate_cold`]
/// (kernel + operating points for all N modules, as before the caching
/// refactor); the incremental loop uses `try_move` + the cached
/// re-score. Both contexts run with a memo pre-warmed over the probe
/// anchors, so the trace upkeep inside the cold loop's relocation is a
/// block copy — the cold number measures the pre-caching re-scoring
/// cost, not the new bookkeeping. The reports are bit-identical between
/// the two paths.
///
/// [`EvaluationContext::evaluate_cold`]: pv_floorplan::EvaluationContext::evaluate_cold
///
/// # Panics
///
/// Panics when the plan does not match the config's topology or no
/// feasible relocation anchor exists (cannot happen on the paper roofs).
#[must_use]
pub fn proposal_loop_timings(
    dataset: &SolarDataset,
    config: &FloorplanConfig,
    map: &SuitabilityMap,
    plan: &FloorplanResult,
    evals: usize,
) -> ProposalTimings {
    let evaluator = EnergyEvaluator::new(config).with_runtime(Runtime::sequential());
    let probe = relocation_probe(dataset, config, map, plan, 32);

    let time = |per_eval: &mut dyn FnMut(CellCoord)| -> f64 {
        let t0 = Instant::now();
        for e in 0..evals {
            per_eval(probe[e % probe.len()]);
        }
        t0.elapsed().as_secs_f64() / evals.max(1) as f64 * 1e9
    };

    let memo = TraceMemo::new();
    let warm_context = || {
        let mut ctx = evaluator
            .context_with_memo(dataset, plan, &memo)
            .expect("sized plan");
        for &anchor in &probe {
            ctx.try_move(0, anchor).expect("probed anchor");
            ctx.commit_move();
        }
        ctx
    };

    // Cold path: single relocation (trace upkeep reduced to a memo copy),
    // then the pre-caching full re-integration of all modules.
    let mut cold_ctx = warm_context();
    let cold_ns = time(&mut |anchor| {
        cold_ctx.relocate(0, anchor).expect("probed anchor");
        std::hint::black_box(cold_ctx.evaluate_cold());
    });

    // Incremental path: the same relocation, then the cached re-score.
    let mut inc_ctx = warm_context();
    let incremental_ns = time(&mut |anchor| {
        inc_ctx.try_move(0, anchor).expect("probed anchor");
        std::hint::black_box(inc_ctx.evaluate());
        inc_ctx.commit_move();
    });

    ProposalTimings {
        cold_ns_per_eval: cold_ns,
        incremental_ns_per_eval: incremental_ns,
    }
}

/// Directory where harness binaries write figures (`target/figures`).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_gis::{PaperRoof, RoofScenario};

    #[test]
    fn smoke_row_has_positive_energies() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = extract_scenario(&scenario, Resolution::Smoke);
        let row = compare_row(&scenario, &dataset, 16);
        assert!(row.traditional.as_wh() > 0.0);
        assert!(row.proposed.as_wh() > 0.0);
        assert_eq!(row.n_modules, 16);
        assert_eq!(row.ng, scenario.dsm.valid().count());
    }

    #[test]
    fn scalar_reference_agrees_with_batched_evaluator() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = extract_scenario(&scenario, Resolution::Smoke);
        let config = FloorplanConfig::paper(Topology::new(8, 2).unwrap()).unwrap();
        let map = SuitabilityMap::compute(&dataset, &config);
        let plan = greedy_placement_with_map(&dataset, &config, &map).unwrap();
        let batched = EnergyEvaluator::new(&config)
            .evaluate(&dataset, &plan)
            .unwrap()
            .energy;
        let reference = scalar_reference_energy(&dataset, &config, &plan);
        let rel = (batched.as_wh() - reference.as_wh()).abs() / reference.as_wh();
        assert!(rel < 1e-9, "batched {batched:?} vs reference {reference:?}");
    }

    #[test]
    fn bench_records_round_trip_through_the_json_reader() {
        let records = [
            BenchRecord {
                name: "proposal_cold".into(),
                scale: "30 days @ 60 min (smoke), N=32".into(),
                ns_per_eval: 1.25e6,
                speedup_vs_cold: 1.0,
            },
            BenchRecord {
                name: "proposal_incremental".into(),
                scale: "30 days @ 60 min (smoke), N=32".into(),
                ns_per_eval: 2.0e5,
                speedup_vs_cold: 6.25,
            },
        ];
        let doc = render_bench_records("evaluator_throughput", &records);
        let parsed = json::parse(&doc).unwrap();
        let items = parsed.as_array().unwrap();
        assert_eq!(items.len(), 2);
        for (item, record) in items.iter().zip(&records) {
            assert_eq!(
                item.get("bench").unwrap().as_str(),
                Some("evaluator_throughput")
            );
            assert_eq!(
                item.get("name").unwrap().as_str(),
                Some(record.name.as_str())
            );
            assert_eq!(
                item.get("scale").unwrap().as_str(),
                Some(record.scale.as_str())
            );
            assert!(item.get("ns_per_eval").unwrap().as_number().unwrap() > 0.0);
            assert!(item.get("speedup_vs_cold").unwrap().as_number().unwrap() > 0.0);
        }
    }

    #[test]
    fn proposal_loop_timings_are_positive_at_tiny_scale() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = SolarExtractor::new(Site::turin(), SimulationClock::days_at_minutes(2, 120))
            .seed(WEATHER_SEED)
            .extract(&scenario.dsm);
        let config = FloorplanConfig::paper(Topology::new(4, 1).unwrap()).unwrap();
        let map = SuitabilityMap::compute(&dataset, &config);
        let plan = greedy_placement_with_map(&dataset, &config, &map).unwrap();
        let t = proposal_loop_timings(&dataset, &config, &map, &plan, 3);
        assert!(t.cold_ns_per_eval > 0.0);
        assert!(t.incremental_ns_per_eval > 0.0);
        assert!(t.speedup().is_finite());
    }

    #[test]
    fn kernel_probe_timings_are_positive_at_tiny_scale() {
        let scenario = RoofScenario::build(PaperRoof::Roof1);
        let dataset = SolarExtractor::new(Site::turin(), SimulationClock::days_at_minutes(2, 120))
            .seed(WEATHER_SEED)
            .extract(&scenario.dsm);
        let config = FloorplanConfig::paper(Topology::new(4, 1).unwrap()).unwrap();
        let map = SuitabilityMap::compute(&dataset, &config);
        let plan = greedy_placement_with_map(&dataset, &config, &map).unwrap();
        let probe = kernel_probe_timings(&dataset, &config, &plan, 1);
        assert_eq!(probe.kernels.len(), 3);
        for k in &probe.kernels {
            assert!(k.name.starts_with("kernel_"), "{}", k.name);
            assert!(k.lane_ns_per_eval > 0.0 && k.scalar_ns_per_eval > 0.0);
            assert!(k.speedup().is_finite());
        }
        let records = probe.to_records("tiny");
        assert_eq!(records.len(), 3);
        let doc = render_bench_records("unit", &records);
        assert!(json::parse(&doc).is_ok());
    }

    #[test]
    fn resolution_clocks() {
        assert_eq!(Resolution::Paper.clock().num_steps(), 35_040);
        assert_eq!(Resolution::Fast.clock().num_steps(), 8_760);
        assert_eq!(Resolution::Smoke.clock().num_steps(), 720);
    }
}
