//! A3 — optimality study: greedy vs exhaustive optimum on tiny roofs, and
//! greedy vs simulated-annealing refinement on a mid-size roof.
//!
//! The paper cannot compare against an exhaustive algorithm at roof scale
//! (Sec. V-B); at toy scale we can, quantifying the greedy heuristic's gap.
//!
//! Usage: `cargo run -p pv-bench --bin ablation_optimality --release [--threads N]`

use pv_bench::runtime_from_args;
use pv_floorplan::anneal::{anneal_with_runtime, AnnealConfig};
use pv_floorplan::exact::optimal_placement_with_runtime;
use pv_floorplan::{greedy_placement, EnergyEvaluator, FloorplanConfig};
use pv_gis::{Obstacle, RoofBuilder, Site, SolarExtractor};
use pv_model::Topology;
use pv_units::{Degrees, Meters, SimulationClock};

fn main() {
    let runtime = runtime_from_args();
    println!("A3: optimality study\n");
    exact_study(runtime);
    anneal_study(runtime);
}

/// Greedy vs exhaustive optimum on a family of tiny shaded roofs.
fn exact_study(runtime: pv_runtime::Runtime) {
    println!("-- greedy vs exhaustive optimum (tiny roofs, 2 modules in series) --");
    println!(
        "{:<26} {:>12} {:>12} {:>8}",
        "scenario", "greedy Wh", "optimal Wh", "gap"
    );
    let clock = SimulationClock::days_at_minutes(6, 120);
    for (label, wall_x) in [
        ("wall on the east edge", 0.0),
        ("wall mid-roof", 2.4),
        ("wall on the west edge", 4.6),
    ] {
        let roof = RoofBuilder::new(Meters::new(4.8), Meters::new(0.8))
            .tilt(Degrees::new(26.0))
            .obstacle(Obstacle::off_roof_block(
                Meters::new(wall_x),
                Meters::new(0.0),
                Meters::new(0.2),
                Meters::new(0.8),
                Meters::new(2.5),
            ))
            .build();
        let data = SolarExtractor::new(Site::turin(), clock)
            .seed(41)
            .runtime(runtime)
            .extract(&roof);
        let config =
            FloorplanConfig::paper(Topology::new(2, 1).expect("topology")).expect("config");
        let greedy = greedy_placement(&data, &config).expect("fits");
        let greedy_wh = EnergyEvaluator::new(&config)
            .evaluate(&data, &greedy)
            .expect("sized")
            .energy;
        let (_, optimal_wh) = optimal_placement_with_runtime(&data, &config, 5_000_000, runtime)
            .expect("search feasible");
        let gap = (1.0 - greedy_wh.as_wh() / optimal_wh.as_wh()) * 100.0;
        println!(
            "{:<26} {:>12.1} {:>12.1} {:>7.2}%",
            label,
            greedy_wh.as_wh(),
            optimal_wh.as_wh(),
            gap
        );
    }
    println!();
}

/// Greedy vs annealing refinement on a mid-size obstructed roof.
fn anneal_study(runtime: pv_runtime::Runtime) {
    println!("-- greedy vs simulated-annealing refinement (12x5 m roof, 8 modules) --");
    let roof = RoofBuilder::new(Meters::new(12.0), Meters::new(5.0))
        .obstacle(Obstacle::chimney(
            Meters::new(5.0),
            Meters::new(1.0),
            Meters::new(0.8),
            Meters::new(0.8),
            Meters::new(1.8),
        ))
        .obstacle(Obstacle::dormer(
            Meters::new(8.0),
            Meters::new(3.0),
            Meters::new(2.0),
            Meters::new(1.5),
            Meters::new(1.2),
        ))
        .build();
    let clock = SimulationClock::days_at_minutes(30, 60);
    let data = SolarExtractor::new(Site::turin(), clock)
        .seed(41)
        .runtime(runtime)
        .extract(&roof);
    let config = FloorplanConfig::paper(Topology::new(4, 2).expect("topology")).expect("config");
    let greedy = greedy_placement(&data, &config).expect("fits");
    let greedy_wh = EnergyEvaluator::new(&config)
        .evaluate(&data, &greedy)
        .expect("sized")
        .energy;
    let (_, annealed_wh) = anneal_with_runtime(
        &data,
        &config,
        &greedy,
        AnnealConfig {
            iterations: 400,
            seed: 7,
            ..AnnealConfig::default()
        },
        runtime,
    )
    .expect("anneal");
    println!(
        "greedy {:.1} Wh, +400 annealing moves {:.1} Wh ({:+.2}% headroom found)",
        greedy_wh.as_wh(),
        annealed_wh.as_wh(),
        (annealed_wh.as_wh() / greedy_wh.as_wh() - 1.0) * 100.0
    );
}
