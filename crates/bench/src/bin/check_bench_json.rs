//! CI guard for the machine-readable bench artifact.
//!
//! Validates that `BENCH_evaluator.json` (written by the
//! `evaluator_throughput` bench and `diag --timings`) exists at the repo
//! root and matches the schema the perf-trajectory tooling expects: a
//! non-empty JSON array of objects, each with string `bench`/`scale`/`name`
//! fields and finite, non-negative `ns_per_eval`/`speedup_vs_cold`
//! numbers. Exits non-zero with a diagnostic otherwise — keeping the
//! artifact honest and fully offline.
//!
//! Usage: `cargo run -p pv_bench --bin check_bench_json [path]`

use pv_bench::json::{parse, JsonValue};

fn validate(doc: &str) -> Result<usize, String> {
    let value = parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let items = value.as_array().ok_or("top-level value must be an array")?;
    if items.is_empty() {
        return Err("array must contain at least one record".into());
    }
    for (i, item) in items.iter().enumerate() {
        if !matches!(item, JsonValue::Object(_)) {
            return Err(format!("record {i} is not an object"));
        }
        for key in ["bench", "scale", "name"] {
            item.get(key)
                .and_then(JsonValue::as_str)
                .filter(|s| !s.is_empty())
                .ok_or(format!("record {i}: missing or empty string field {key:?}"))?;
        }
        for key in ["ns_per_eval", "speedup_vs_cold"] {
            let x = item
                .get(key)
                .and_then(JsonValue::as_number)
                .ok_or(format!("record {i}: missing numeric field {key:?}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("record {i}: {key} = {x} is not a sane measurement"));
            }
        }
    }
    Ok(items.len())
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map_or_else(pv_bench::bench_json_path, std::path::PathBuf::from);
    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!(
                "Error: cannot read {} ({e}); run the evaluator_throughput \
                 bench or diag --timings first",
                path.display()
            );
            std::process::exit(1);
        }
    };
    match validate(&doc) {
        Ok(n) => println!("{}: {n} record(s), schema ok", path.display()),
        Err(e) => {
            eprintln!("Error: {} is malformed: {e}", path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    const GOOD: &str = r#"[{"bench": "b", "scale": "s", "name": "n",
        "ns_per_eval": 12.5, "speedup_vs_cold": 1.0}]"#;

    #[test]
    fn accepts_the_writer_schema() {
        assert_eq!(validate(GOOD), Ok(1));
    }

    #[test]
    fn rejects_structural_violations() {
        for (doc, why) in [
            ("{}", "not an array"),
            ("[]", "empty"),
            ("[1]", "non-object record"),
            (
                r#"[{"bench": "b", "scale": "s", "ns_per_eval": 1, "speedup_vs_cold": 1}]"#,
                "missing name",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "", "ns_per_eval": 1, "speedup_vs_cold": 1}]"#,
                "empty name",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "n", "ns_per_eval": "fast", "speedup_vs_cold": 1}]"#,
                "string number",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "n", "ns_per_eval": -1, "speedup_vs_cold": 1}]"#,
                "negative",
            ),
            ("not json", "garbage"),
        ] {
            assert!(validate(doc).is_err(), "accepted {why}: {doc}");
        }
    }
}
