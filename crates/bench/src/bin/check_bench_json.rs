//! CI guard for the machine-readable bench artifacts.
//!
//! Validates that a bench artifact — `BENCH_evaluator.json` (written by
//! the `evaluator_throughput` bench and `diag --timings`),
//! `BENCH_portfolio.json` (written by the `portfolio` bin and
//! `pvplan suite`) or `BENCH_server.json` (written by the `loadgen` bin)
//! — exists and matches the schema the perf-trajectory tooling expects: a non-empty JSON array of objects, each carrying the
//! shared string core (`bench`, `scale`, `name`) plus its variant's
//! numeric measurements, all finite and non-negative. Evaluator rows
//! named `kernel_*` additionally act as a perf gate: their
//! `speedup_vs_cold` (lane kernel vs its scalar reference shape) must
//! be present and at least 1. Exits non-zero with a diagnostic
//! otherwise — keeping the artifacts honest and fully offline.
//!
//! Also validates the `pvlint --json` artifact, recognised by its
//! top-level `"tool": "pvlint"` tag: scan counters plus a findings
//! array whose entries carry rule, file, line and message.
//!
//! Two observability artifacts ride through the same gate:
//!
//! - **Prometheus exposition text** (a `/v1/metrics` scrape, recognised
//!   by its leading `#` comment line): every sample must be declared by
//!   a preceding `# TYPE`, every value must be a finite number, and the
//!   core serving counters must be present.
//! - **Trace-log JSONL** (written by `--trace-log`, recognised by a
//!   first line that is a JSON object with a `"trace"` field): every
//!   line must carry a 16-hex trace id, a target, an HTTP status, and
//!   finite non-negative span durations.
//!
//! Usage: `cargo run -p pv_bench --bin check_bench_json [path]...`
//! (no path: checks `BENCH_evaluator.json` at the repo root).

use pv_bench::json::{parse, JsonValue};

/// Checks one numeric field for existence, finiteness and non-negativity.
fn check_number(item: &JsonValue, i: usize, key: &str) -> Result<(), String> {
    let x = item
        .get(key)
        .and_then(JsonValue::as_number)
        .ok_or(format!("record {i}: missing numeric field {key:?}"))?;
    if !x.is_finite() || x < 0.0 {
        return Err(format!("record {i}: {key} = {x} is not a sane measurement"));
    }
    Ok(())
}

/// Validates the `pvlint --json` artifact: counters must be counts, and
/// every finding must name its rule, file, line and message. An empty
/// findings array is valid — that is what a clean tree writes.
fn validate_pvlint(value: &JsonValue) -> Result<usize, String> {
    for key in ["version", "files_scanned", "suppressed"] {
        let x = value
            .get(key)
            .and_then(JsonValue::as_number)
            .ok_or(format!("pvlint artifact: missing numeric field {key:?}"))?;
        if !x.is_finite() || x < 0.0 || x.fract() != 0.0 {
            return Err(format!("pvlint artifact: {key} = {x} is not a count"));
        }
    }
    if value.get("files_scanned").and_then(JsonValue::as_number) < Some(1.0) {
        return Err("pvlint artifact: files_scanned must be at least 1".into());
    }
    let findings = value
        .get("findings")
        .and_then(JsonValue::as_array)
        .ok_or("pvlint artifact: missing \"findings\" array")?;
    for (i, item) in findings.iter().enumerate() {
        for key in ["rule", "severity", "file", "message"] {
            item.get(key)
                .and_then(JsonValue::as_str)
                .filter(|s| !s.is_empty())
                .ok_or(format!(
                    "finding {i}: missing or empty string field {key:?}"
                ))?;
        }
        // The excerpt must exist but may legitimately be empty.
        item.get("excerpt")
            .and_then(JsonValue::as_str)
            .ok_or(format!("finding {i}: missing string field \"excerpt\""))?;
        let line = item
            .get("line")
            .and_then(JsonValue::as_number)
            .ok_or(format!("finding {i}: missing numeric field \"line\""))?;
        if !line.is_finite() || line < 1.0 || line.fract() != 0.0 {
            return Err(format!("finding {i}: line {line} is not a 1-based line"));
        }
    }
    Ok(findings.len())
}

/// Validates a `/v1/metrics` scrape: Prometheus exposition text, version
/// 0.0.4. Every non-comment line is `name[{labels}] value`; every sample
/// family must be declared by a `# TYPE` line before its first sample;
/// every value must be a finite number; and the serving counters the CI
/// smoke step depends on must all be present. Returns the sample count.
fn validate_exposition(doc: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (i, line) in doc.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                match decl.split(' ').collect::<Vec<_>>()[..] {
                    [name, "counter" | "gauge" | "histogram"] => declared.push(name.to_string()),
                    _ => return Err(format!("line {n}: malformed TYPE declaration: {line}")),
                }
            } else if !comment.starts_with("HELP ") {
                return Err(format!(
                    "line {n}: comment is neither HELP nor TYPE: {line}"
                ));
            }
            continue;
        }
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: sample has no value: {line}"))?;
        let family = name_labels
            .split(['{', ' '])
            .next()
            .unwrap_or(name_labels)
            // Histogram series share their family's TYPE declaration.
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        if !declared.iter().any(|d| d == family) {
            return Err(format!(
                "line {n}: sample '{family}' has no TYPE declaration"
            ));
        }
        let x: f64 = value
            .parse()
            .map_err(|e| format!("line {n}: value '{value}' is not a number ({e})"))?;
        if !x.is_finite() {
            return Err(format!("line {n}: value {x} is not finite"));
        }
        samples += 1;
    }
    for required in [
        "pv_requests_total",
        "pv_place_ok_total",
        "pv_errors_total",
        "pv_place_latency_us",
    ] {
        if !declared.iter().any(|d| d == required) {
            return Err(format!("exposition is missing the {required} family"));
        }
    }
    Ok(samples)
}

/// Validates a `--trace-log` JSONL file: every line is one JSON event
/// carrying a 16-hex `trace` id, a non-empty `target`, an integral HTTP
/// `status`, and finite non-negative `total_us`/stage durations. Returns
/// the event count.
fn validate_trace_log(doc: &str) -> Result<usize, String> {
    let mut events = 0usize;
    for (i, line) in doc.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        let event = parse(line).map_err(|e| format!("line {n}: not valid JSON: {e}"))?;
        let trace = event
            .get("trace")
            .and_then(JsonValue::as_str)
            .ok_or(format!("line {n}: missing string field \"trace\""))?;
        if trace.len() != 16 || !trace.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("line {n}: trace id '{trace}' is not 16 hex digits"));
        }
        event
            .get("target")
            .and_then(JsonValue::as_str)
            .filter(|s| !s.is_empty())
            .ok_or(format!(
                "line {n}: missing or empty string field \"target\""
            ))?;
        let status = event
            .get("status")
            .and_then(JsonValue::as_number)
            .ok_or(format!("line {n}: missing numeric field \"status\""))?;
        if !(100.0..=599.0).contains(&status) || status.fract() != 0.0 {
            return Err(format!("line {n}: status {status} is not an HTTP status"));
        }
        let total = event
            .get("total_us")
            .and_then(JsonValue::as_number)
            .ok_or(format!("line {n}: missing numeric field \"total_us\""))?;
        if !total.is_finite() || total < 0.0 {
            return Err(format!("line {n}: total_us = {total} is not a duration"));
        }
        let JsonValue::Object(stages) = event
            .get("stages")
            .ok_or(format!("line {n}: missing object field \"stages\""))?
        else {
            return Err(format!("line {n}: \"stages\" is not an object"));
        };
        for (stage, span) in stages {
            let us = span
                .as_number()
                .ok_or(format!("line {n}: stage '{stage}' span is not a number"))?;
            if !us.is_finite() || us < 0.0 {
                return Err(format!(
                    "line {n}: stage '{stage}' span {us} is not a duration"
                ));
            }
        }
        events += 1;
    }
    if events == 0 {
        return Err("trace log contains no events".into());
    }
    Ok(events)
}

/// A JSONL trace log is recognised by its first line: a complete JSON
/// object carrying a `"trace"` field. (Pretty-printed artifacts never
/// parse line-wise, so they fall through to the JSON paths.)
fn looks_like_trace_log(doc: &str) -> bool {
    doc.lines()
        .find(|line| !line.is_empty())
        .and_then(|line| parse(line).ok())
        .is_some_and(|event| event.get("trace").is_some())
}

fn validate(doc: &str) -> Result<usize, String> {
    if doc.trim_start().starts_with('#') {
        return validate_exposition(doc);
    }
    if looks_like_trace_log(doc) {
        return validate_trace_log(doc);
    }
    let value = parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    if value.get("tool").and_then(JsonValue::as_str) == Some("pvlint") {
        return validate_pvlint(&value);
    }
    let items = value.as_array().ok_or("top-level value must be an array")?;
    if items.is_empty() {
        return Err("array must contain at least one record".into());
    }
    for (i, item) in items.iter().enumerate() {
        if !matches!(item, JsonValue::Object(_)) {
            return Err(format!("record {i} is not an object"));
        }
        // Shared core of every artifact variant.
        for key in ["bench", "scale", "name"] {
            item.get(key)
                .and_then(JsonValue::as_str)
                .filter(|s| !s.is_empty())
                .ok_or(format!("record {i}: missing or empty string field {key:?}"))?;
        }
        // Variant fields: evaluator-throughput vs server-loadgen vs
        // portfolio records.
        if item.get("ns_per_eval").is_some() {
            for key in ["ns_per_eval", "speedup_vs_cold"] {
                check_number(item, i, key)?;
            }
            // Lane-kernel rows assert a regression gate, not just a
            // schema: the lane shape must never lose to the scalar
            // reference it replaced.
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .expect("checked just above");
            if name.starts_with("kernel_") {
                let speedup = item
                    .get("speedup_vs_cold")
                    .and_then(JsonValue::as_number)
                    .expect("checked just above");
                if speedup < 1.0 {
                    return Err(format!(
                        "record {i}: {name} speedup_vs_cold = {speedup} — the lane \
                         kernel regressed below its scalar reference"
                    ));
                }
            }
        } else if item.get("rps").is_some() {
            for key in ["requests", "rps", "p50_ms", "p99_ms", "cache_hit_rate"] {
                check_number(item, i, key)?;
            }
            let rate = item
                .get("cache_hit_rate")
                .and_then(JsonValue::as_number)
                .expect("checked just above");
            if rate > 1.0 {
                return Err(format!("record {i}: cache_hit_rate {rate} exceeds 1"));
            }
            // Restart-recovery rows (written by `loadgen --restart-recovery`)
            // additionally report how much of the post-restart traffic the
            // snapshot store absorbed. The hydrated row acts as a gate, not
            // just a schema: a restart that hydrated nothing means the store
            // silently stopped working.
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .expect("checked just above");
            if name.starts_with("restart_") {
                check_number(item, i, "store_hit_rate")?;
                let store_rate = item
                    .get("store_hit_rate")
                    .and_then(JsonValue::as_number)
                    .expect("checked just above");
                if store_rate > 1.0 {
                    return Err(format!("record {i}: store_hit_rate {store_rate} exceeds 1"));
                }
                if name == "restart_hydrated" && store_rate <= 0.0 {
                    return Err(format!(
                        "record {i}: restart_hydrated store_hit_rate = {store_rate} — the \
                         snapshot store served nothing after the restart"
                    ));
                }
            }
            // Router rows (written by `loadgen --router`) must identify
            // their shard count and the host's core count — the scaling
            // gate below is only meaningful when shards could actually
            // run in parallel.
            if name.starts_with("shards_") {
                for key in ["shards", "cpus"] {
                    check_number(item, i, key)?;
                    let x = item
                        .get(key)
                        .and_then(JsonValue::as_number)
                        .expect("checked just above");
                    if x < 1.0 || x.fract() != 0.0 {
                        return Err(format!("record {i}: {key} = {x} is not a count"));
                    }
                }
            }
        } else if item.get("greedy_wh").is_some() {
            for key in [
                "latitude_deg",
                "width_cells",
                "depth_cells",
                "ng",
                "series",
                "strings",
                "greedy_wh",
                "anneal_wh",
                "anneal_gain_percent",
                "wall_ms",
            ] {
                check_number(item, i, key)?;
            }
            // Optional pair: present together or not at all, both sane
            // (the exhaustive optimum bounds greedy, so the gap is ≥ 0).
            match (item.get("exact_wh"), item.get("exact_gap_percent")) {
                (None, None) => {}
                (Some(_), Some(_)) => {
                    check_number(item, i, "exact_wh")?;
                    check_number(item, i, "exact_gap_percent")?;
                }
                _ => {
                    return Err(format!(
                        "record {i}: exact_wh and exact_gap_percent must appear together"
                    ))
                }
            }
            item.get("archetype")
                .and_then(JsonValue::as_str)
                .filter(|s| !s.is_empty())
                .ok_or(format!(
                    "record {i}: missing or empty string field \"archetype\""
                ))?;
        } else {
            return Err(format!(
                "record {i}: not an evaluator (ns_per_eval), server (rps) \
                 or portfolio (greedy_wh) record"
            ));
        }
    }
    check_shard_scaling(items)?;
    Ok(items.len())
}

/// Cross-record gate for the throughput-vs-shards curve: a 2-shard fleet
/// must beat the single-process warm row by at least 1.3× — but only on
/// hosts with at least 2 CPUs (recorded in the row itself). On a
/// single-core container the extra shard can only time-slice, so the
/// ratio carries no signal and the gate is skipped rather than faked.
fn check_shard_scaling(items: &[JsonValue]) -> Result<(), String> {
    let rps_of = |name: &str| -> Option<f64> {
        items
            .iter()
            .find(|item| item.get("name").and_then(JsonValue::as_str) == Some(name))
            .and_then(|item| item.get("rps").and_then(JsonValue::as_number))
    };
    let cpus = items
        .iter()
        .find(|item| item.get("name").and_then(JsonValue::as_str) == Some("shards_2"))
        .and_then(|item| item.get("cpus").and_then(JsonValue::as_number));
    let (Some(sharded), Some(baseline), Some(cpus)) =
        (rps_of("shards_2"), rps_of("warm_mix"), cpus)
    else {
        return Ok(()); // no curve in this artifact, or no single-process baseline
    };
    if cpus < 2.0 {
        println!(
            "note: shards_2 scaling gate skipped — measured on {cpus} cpu(s), \
             sharding cannot parallelize there"
        );
        return Ok(());
    }
    let ratio = sharded / baseline.max(1e-9);
    if ratio < 1.3 {
        return Err(format!(
            "shards_2 throughput {sharded} req/s is only {ratio:.2}x the warm_mix \
             baseline {baseline} req/s on a {cpus}-cpu host (gate: >= 1.3x)"
        ));
    }
    Ok(())
}

fn check_file(path: &std::path::Path) -> Result<(), ()> {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!(
                "Error: cannot read {} ({e}); run the evaluator_throughput \
                 bench, diag --timings, or the portfolio bin first",
                path.display()
            );
            return Err(());
        }
    };
    match validate(&doc) {
        Ok(n) => {
            println!("{}: {n} record(s), schema ok", path.display());
            Ok(())
        }
        Err(e) => {
            eprintln!("Error: {} is malformed: {e}", path.display());
            Err(())
        }
    }
}

fn main() {
    let paths: Vec<std::path::PathBuf> = {
        let args: Vec<_> = std::env::args()
            .skip(1)
            .map(std::path::PathBuf::from)
            .collect();
        if args.is_empty() {
            vec![pv_bench::bench_json_path()]
        } else {
            args
        }
    };
    // Check (and report on) every artifact before deciding the exit code —
    // a broken first file must not mask diagnostics for the second.
    let results: Vec<_> = paths.iter().map(|p| check_file(p)).collect();
    if results.iter().any(Result::is_err) {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    const GOOD: &str = r#"[{"bench": "b", "scale": "s", "name": "n",
        "ns_per_eval": 12.5, "speedup_vs_cold": 1.0}]"#;

    const GOOD_PORTFOLIO: &str = r#"[{"bench": "portfolio:smoke", "scale": "s",
        "name": "s000-flat-lat27", "archetype": "flat", "latitude_deg": 27.0,
        "width_cells": 60, "depth_cells": 30, "ng": 1500,
        "series": 2, "strings": 2, "greedy_wh": 1234.5, "anneal_wh": 1250.0,
        "anneal_gain_percent": 1.25, "exact_wh": 1260.0,
        "exact_gap_percent": 2.02, "wall_ms": 17.3}]"#;

    const GOOD_SERVER: &str = r#"[{"bench": "server_loadgen",
        "scale": "8 sites, 4 clients, seed 2018, smoke clock",
        "name": "warm_mix", "requests": 200, "rps": 312.5,
        "p50_ms": 2.1, "p99_ms": 9.8, "cache_hit_rate": 0.96}]"#;

    #[test]
    fn accepts_the_evaluator_writer_schema() {
        assert_eq!(validate(GOOD), Ok(1));
    }

    const GOOD_KERNEL: &str = r#"[{"bench": "b", "scale": "s",
        "name": "kernel_irradiance_census",
        "ns_per_eval": 52000.0, "speedup_vs_cold": 8.4}]"#;

    #[test]
    fn kernel_rows_must_not_regress_below_their_scalar_reference() {
        assert_eq!(validate(GOOD_KERNEL), Ok(1));
        // Exactly 1.0 (break-even) passes; anything below fails.
        let even = GOOD_KERNEL.replace("8.4", "1.0");
        assert_eq!(validate(&even), Ok(1));
        let regressed = GOOD_KERNEL.replace("8.4", "0.93");
        let err = validate(&regressed).unwrap_err();
        assert!(err.contains("kernel_irradiance_census"), "{err}");
        assert!(err.contains("regressed"), "{err}");
        // Non-kernel rows keep the old schema-only rule: a sub-1
        // speedup is sane there (cold rung is 1.0 by definition).
        let cold = GOOD.replace("1.0", "0.5");
        assert_eq!(validate(&cold), Ok(1));
    }

    #[test]
    fn accepts_the_server_loadgen_schema() {
        assert_eq!(validate(GOOD_SERVER), Ok(1));
        // A hit rate is a rate: > 1 is a broken measurement.
        let bad = GOOD_SERVER.replace("0.96", "1.5");
        assert!(validate(&bad).unwrap_err().contains("cache_hit_rate"));
        let missing = GOOD_SERVER.replace(r#""p99_ms": 9.8,"#, "");
        assert!(validate(&missing).is_err());
    }

    const GOOD_RESTART: &str = r#"[{"bench": "server_loadgen",
        "scale": "2 sites, 2 clients, seed 2018, smoke clock",
        "name": "restart_hydrated", "requests": 2, "rps": 205.0,
        "p50_ms": 3.0, "p99_ms": 6.7, "cache_hit_rate": 1.0,
        "store_hit_rate": 1.0}]"#;

    #[test]
    fn restart_rows_must_carry_a_working_store_hit_rate() {
        assert_eq!(validate(GOOD_RESTART), Ok(1));
        // The cold restart row legitimately has a zero store rate.
        let cold = GOOD_RESTART
            .replace("restart_hydrated", "restart_cold")
            .replace(r#""store_hit_rate": 1.0"#, r#""store_hit_rate": 0.0"#);
        assert_eq!(validate(&cold), Ok(1));
        // Restart rows without the field fail the schema...
        let missing = GOOD_RESTART.replace(
            r#",
        "store_hit_rate": 1.0"#,
            "",
        );
        let err = validate(&missing).unwrap_err();
        assert!(err.contains("store_hit_rate"), "{err}");
        // ...an over-1 rate is a broken measurement...
        let over = GOOD_RESTART.replace(r#""store_hit_rate": 1.0"#, r#""store_hit_rate": 1.5"#);
        assert!(validate(&over).unwrap_err().contains("store_hit_rate"));
        // ...and a hydrated restart that served nothing from the store
        // is a gate failure, not a valid measurement.
        let dead = GOOD_RESTART.replace(r#""store_hit_rate": 1.0"#, r#""store_hit_rate": 0.0"#);
        let err = validate(&dead).unwrap_err();
        assert!(err.contains("served nothing"), "{err}");
        // Non-restart rows stay exempt: the plain schema has no store field.
        assert_eq!(validate(GOOD_SERVER), Ok(1));
    }

    const GOOD_SHARDS: &str = r#"[{"bench": "server_loadgen",
        "scale": "8 sites, 4 clients, seed 2018, smoke clock",
        "name": "warm_mix", "requests": 200, "rps": 100.0,
        "p50_ms": 2.1, "p99_ms": 9.8, "cache_hit_rate": 0.96},
        {"bench": "server_loadgen",
        "scale": "8 sites, 4 clients, seed 2018, smoke clock",
        "name": "shards_2", "requests": 200, "rps": 150.0,
        "p50_ms": 2.4, "p99_ms": 10.1, "cache_hit_rate": 0.96,
        "shards": 2, "cpus": 4}]"#;

    #[test]
    fn shard_rows_must_carry_shard_and_cpu_counts() {
        assert_eq!(validate(GOOD_SHARDS), Ok(2));
        let missing = GOOD_SHARDS.replace(r#""shards": 2, "cpus": 4"#, r#""shards": 2"#);
        assert!(validate(&missing).unwrap_err().contains("cpus"));
        let fractional = GOOD_SHARDS.replace(r#""shards": 2"#, r#""shards": 2.5"#);
        assert!(validate(&fractional).unwrap_err().contains("not a count"));
    }

    #[test]
    fn two_shard_scaling_gate_fires_only_on_multicore_hosts() {
        // 1.5x on a 4-cpu host: passes the 1.3x gate.
        assert_eq!(validate(GOOD_SHARDS), Ok(2));
        // 1.1x on a 4-cpu host: the fleet failed to scale — gate fires.
        let flat = GOOD_SHARDS.replace(r#""rps": 150.0"#, r#""rps": 110.0"#);
        let err = validate(&flat).unwrap_err();
        assert!(err.contains("1.3x"), "{err}");
        // The same flat curve measured on 1 cpu carries no signal: the
        // gate is skipped (schema still enforced), not faked.
        let single = flat.replace(r#""cpus": 4"#, r#""cpus": 1"#);
        assert_eq!(validate(&single), Ok(2));
        // No warm_mix baseline in the artifact: nothing to compare.
        let no_baseline = GOOD_SHARDS.replace(r#""name": "warm_mix""#, r#""name": "other""#);
        assert_eq!(validate(&no_baseline), Ok(2));
    }

    #[test]
    fn accepts_the_portfolio_writer_schema() {
        assert_eq!(validate(GOOD_PORTFOLIO), Ok(1));
        // The exact pair is optional — but only as a pair.
        let no_exact = GOOD_PORTFOLIO
            .replace(r#""exact_wh": 1260.0,"#, "")
            .replace(r#""exact_gap_percent": 2.02,"#, "");
        assert_eq!(validate(&no_exact), Ok(1));
        let half_pair = GOOD_PORTFOLIO.replace(r#""exact_wh": 1260.0,"#, "");
        assert!(validate(&half_pair).is_err());
    }

    #[test]
    fn accepts_a_real_rendered_portfolio_document() {
        use pv_bench::portfolio::{render_portfolio_json, PortfolioRecord};
        let record = PortfolioRecord {
            scenario: "s001-leanto-lat30".into(),
            archetype: "leanto".into(),
            latitude_deg: 30.2,
            dims: (70, 33),
            ng: 2000,
            series: 4,
            strings: 2,
            greedy_wh: 5000.0,
            anneal_wh: 5010.0,
            exact_wh: None,
            wall_ms: 12.0,
        };
        let doc = render_portfolio_json("smoke", "2 days @ 120 min", &[record]);
        assert_eq!(validate(&doc), Ok(1));
    }

    const GOOD_PVLINT: &str = r#"{"tool": "pvlint", "version": 1,
        "files_scanned": 98, "suppressed": 5, "findings": [
        {"rule": "D01", "severity": "deny", "file": "crates/gis/src/x.rs",
         "line": 12, "message": "hash collections are unordered",
         "excerpt": "use std::collections::HashMap;"}]}"#;

    #[test]
    fn accepts_the_pvlint_artifact_schema() {
        assert_eq!(validate(GOOD_PVLINT), Ok(1));
        // A clean tree writes an empty findings array — that is valid.
        let clean = GOOD_PVLINT.replace(
            r#""findings": [
        {"rule": "D01", "severity": "deny", "file": "crates/gis/src/x.rs",
         "line": 12, "message": "hash collections are unordered",
         "excerpt": "use std::collections::HashMap;"}]"#,
            r#""findings": []"#,
        );
        assert_eq!(validate(&clean), Ok(0));
    }

    #[test]
    fn rejects_malformed_pvlint_artifacts() {
        for (doc, why) in [
            (
                GOOD_PVLINT.replace(r#""files_scanned": 98"#, r#""files_scanned": 0"#),
                "zero files scanned",
            ),
            (
                GOOD_PVLINT.replace(r#""line": 12"#, r#""line": 0"#),
                "0-based line",
            ),
            (
                GOOD_PVLINT.replace(r#""rule": "D01""#, r#""rule": """#),
                "empty rule",
            ),
            (
                GOOD_PVLINT.replace(r#""suppressed": 5,"#, ""),
                "missing suppressed counter",
            ),
            (
                r#"{"tool": "pvlint", "version": 1, "files_scanned": 9, "suppressed": 0}"#
                    .to_string(),
                "missing findings array",
            ),
        ] {
            assert!(validate(&doc).is_err(), "accepted {why}: {doc}");
        }
    }

    const GOOD_EXPOSITION: &str = "# HELP pv_requests_total Requests routed, any endpoint.\n\
        # TYPE pv_requests_total counter\n\
        pv_requests_total 50\n\
        # HELP pv_place_ok_total Successful /v1/place solves.\n\
        # TYPE pv_place_ok_total counter\n\
        pv_place_ok_total 42\n\
        # HELP pv_errors_total Requests answered with a 4xx/5xx.\n\
        # TYPE pv_errors_total counter\n\
        pv_errors_total 0\n\
        # HELP pv_place_latency_us End-to-end /v1/place latency, microseconds.\n\
        # TYPE pv_place_latency_us histogram\n\
        pv_place_latency_us_bucket{le=\"64\"} 1\n\
        pv_place_latency_us_bucket{le=\"+Inf\"} 42\n\
        pv_place_latency_us_sum 90000\n\
        pv_place_latency_us_count 42\n";

    #[test]
    fn accepts_a_real_metrics_scrape() {
        assert_eq!(validate(GOOD_EXPOSITION), Ok(7));
        // Histogram series with labels resolve to their family's TYPE.
        let stage = format!(
            "{GOOD_EXPOSITION}# TYPE pv_stage_us histogram\n\
             pv_stage_us_bucket{{stage=\"solve\",le=\"+Inf\"}} 3\n"
        );
        assert_eq!(validate(&stage), Ok(8));
    }

    #[test]
    fn rejects_malformed_expositions() {
        for (doc, why) in [
            (
                GOOD_EXPOSITION.replace("# TYPE pv_requests_total counter\n", ""),
                "sample without a TYPE declaration",
            ),
            (
                GOOD_EXPOSITION.replace("pv_place_ok_total 42", "pv_place_ok_total fast"),
                "non-numeric value",
            ),
            (
                GOOD_EXPOSITION.replace("pv_errors_total 0", "pv_errors_total NaN"),
                "non-finite value",
            ),
            (
                GOOD_EXPOSITION.replace("counter\n", "summary\n"),
                "unknown metric type",
            ),
            (
                GOOD_EXPOSITION.replace(
                    "# TYPE pv_place_latency_us histogram",
                    "# NOTE freeform commentary",
                ),
                "comment that is neither HELP nor TYPE",
            ),
            (
                "# HELP x y\n# TYPE x counter\nx 1\n".to_string(),
                "missing the required serving families",
            ),
        ] {
            assert!(validate(&doc).is_err(), "accepted {why}: {doc}");
        }
    }

    const GOOD_TRACE_LOG: &str = concat!(
        "{\"trace\": \"00f1d2c3b4a59687\", \"target\": \"/v1/place\", \"status\": 200, ",
        "\"total_us\": 5200, \"stages\": {\"extract\": 4100, \"solve\": 900}}\n",
        "{\"trace\": \"deadbeef00000001\", \"target\": \"/v1/stats\", \"status\": 200, ",
        "\"total_us\": 40, \"stages\": {}}\n",
    );

    #[test]
    fn accepts_a_trace_log_and_rejects_broken_events() {
        assert_eq!(validate(GOOD_TRACE_LOG), Ok(2));
        for (doc, why) in [
            (
                GOOD_TRACE_LOG.replace("00f1d2c3b4a59687", "xyz"),
                "short non-hex trace id",
            ),
            (
                GOOD_TRACE_LOG.replace("\"status\": 200", "\"status\": 999"),
                "out-of-range status",
            ),
            (
                GOOD_TRACE_LOG.replace("\"total_us\": 5200, ", ""),
                "missing total_us",
            ),
            (
                GOOD_TRACE_LOG.replace("\"solve\": 900", "\"solve\": -1"),
                "negative span",
            ),
            (
                GOOD_TRACE_LOG.replace("\"target\": \"/v1/place\"", "\"target\": \"\""),
                "empty target",
            ),
        ] {
            assert!(validate(&doc).is_err(), "accepted {why}: {doc}");
        }
    }

    #[test]
    fn rejects_structural_violations() {
        for (doc, why) in [
            ("{}", "not an array"),
            ("[]", "empty"),
            ("[1]", "non-object record"),
            (
                r#"[{"bench": "b", "scale": "s", "ns_per_eval": 1, "speedup_vs_cold": 1}]"#,
                "missing name",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "", "ns_per_eval": 1, "speedup_vs_cold": 1}]"#,
                "empty name",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "n", "ns_per_eval": "fast", "speedup_vs_cold": 1}]"#,
                "string number",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "n", "ns_per_eval": -1, "speedup_vs_cold": 1}]"#,
                "negative",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "n"}]"#,
                "no variant fields",
            ),
            (
                r#"[{"bench": "b", "scale": "s", "name": "n", "greedy_wh": 1.0}]"#,
                "portfolio record missing fields",
            ),
            ("not json", "garbage"),
        ] {
            assert!(validate(doc).is_err(), "accepted {why}: {doc}");
        }
    }
}
