//! E1 — regenerates **Table I**: traditional vs proposed yearly production
//! on the three roofs for N = 16 and N = 32 (8-series strings).
//!
//! Usage: `cargo run -p pv-bench --bin table1 --release [--fast|--smoke] [--threads N]`

use pv_bench::{compare_row_with, extract_scenario_with, runtime_from_args, Resolution};
use pv_floorplan::Table1Report;
use pv_gis::paper_roofs;
use std::time::Instant;

fn main() {
    let resolution = Resolution::from_args();
    let runtime = runtime_from_args();
    println!("Table I reproduction — {}", resolution.label());
    println!("(absolute MWh depend on the synthetic weather; the paper's");
    println!(" published % gains are shown in the right column)\n");

    let mut report = Table1Report::new();
    let start = Instant::now();
    for scenario in paper_roofs() {
        let t0 = Instant::now();
        let dataset = extract_scenario_with(&scenario, resolution, runtime);
        let extract_s = t0.elapsed().as_secs_f64();
        for n in [16usize, 32] {
            let t1 = Instant::now();
            report.push(compare_row_with(&scenario, &dataset, n, runtime));
            eprintln!(
                "  {} N={n}: extract {extract_s:.1}s, place+evaluate {:.1}s",
                scenario.name(),
                t1.elapsed().as_secs_f64()
            );
        }
    }
    println!("{report}");
    println!("total wall time: {:.1}s", start.elapsed().as_secs_f64());
}
