//! E1 — regenerates **Table I**: traditional vs proposed yearly production
//! on the three roofs for N = 16 and N = 32 (8-series strings).
//!
//! Usage: `cargo run -p pv-bench --bin table1 --release [--fast|--smoke] [--threads N]`

use pv_bench::{
    compare_row_with, extract_scenario_with, parse_harness_args, HarnessArgs, Resolution,
};
use pv_floorplan::Table1Report;
use pv_gis::paper_roofs;
use std::time::Instant;

fn main() {
    let cli: Vec<String> = std::env::args().skip(1).collect();
    match parse_harness_args(&cli, &[]) {
        Ok(args) => run(&args),
        Err(e) => {
            eprintln!("Error: {e}");
            std::process::exit(1);
        }
    }
}

fn run(args: &HarnessArgs) {
    let resolution = args.resolution_or(Resolution::Paper);
    let runtime = args.runtime();
    println!("Table I reproduction — {}", resolution.label());
    println!("(absolute MWh depend on the synthetic weather; the paper's");
    println!(" published % gains are shown in the right column)\n");

    let mut report = Table1Report::new();
    let start = Instant::now();
    for scenario in paper_roofs() {
        let t0 = Instant::now();
        let dataset = extract_scenario_with(&scenario, resolution, runtime);
        let extract_s = t0.elapsed().as_secs_f64();
        for n in [16usize, 32] {
            let t1 = Instant::now();
            report.push(compare_row_with(&scenario, &dataset, n, runtime));
            eprintln!(
                "  {} N={n}: extract {extract_s:.1}s, place+evaluate {:.1}s",
                scenario.name(),
                t1.elapsed().as_secs_f64()
            );
        }
    }
    println!("{report}");
    println!("total wall time: {:.1}s", start.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_paths_return_messages_not_panics() {
        let unknown = vec!["--frobnicate".to_string()];
        let err = parse_harness_args(&unknown, &[]).unwrap_err();
        assert!(err.contains("unknown flag '--frobnicate'"), "{err}");
        let dangling = vec!["--threads".to_string()];
        let err = parse_harness_args(&dangling, &[]).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn defaults_to_paper_resolution() {
        let args = parse_harness_args(&[], &[]).expect("empty args are valid");
        assert_eq!(args.resolution_or(Resolution::Paper), Resolution::Paper);
        assert!(args.threads.is_none());
    }
}
