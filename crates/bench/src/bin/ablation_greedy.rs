//! A2 — ablation of the greedy algorithm's two structural choices on
//! Roof 2 (N = 32): series-first enumeration and the distance threshold.
//!
//! The paper credits series-first enumeration with avoiding the
//! weak-module bottleneck (its Roof 1 discussion) and uses the distance
//! threshold to contain wiring overhead; this harness isolates both.
//!
//! Usage: `cargo run -p pv-bench --bin ablation_greedy --release [--fast|--smoke] [--threads N]`

use pv_bench::{extract_scenario_with, runtime_from_args, Resolution};
use pv_floorplan::{greedy_placement_with_map, EnergyEvaluator, FloorplanConfig, SuitabilityMap};
use pv_gis::{PaperRoof, RoofScenario};
use pv_model::Topology;

fn main() {
    let resolution = Resolution::from_args();
    let runtime = runtime_from_args();
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let dataset = extract_scenario_with(&scenario, resolution, runtime);
    let topology = Topology::new(8, 4).expect("valid topology");

    println!(
        "A2: greedy-structure ablation — {} (Roof 2, N = 32)\n",
        resolution.label()
    );
    println!(
        "{:<34} {:>12} {:>10} {:>10}",
        "variant", "energy MWh", "wire m", "mismatch"
    );

    for (label, config) in [
        (
            "paper (series-first + threshold)",
            FloorplanConfig::paper(topology).expect("config"),
        ),
        (
            "no distance threshold",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_distance_threshold(None),
        ),
        (
            "interleaved strings",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_series_first(false),
        ),
        (
            "interleaved + no threshold",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_series_first(false)
                .with_distance_threshold(None),
        ),
        (
            "tight threshold (1.0x)",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_distance_threshold(Some(1.0)),
        ),
    ] {
        let map = SuitabilityMap::compute(&dataset, &config);
        let plan = greedy_placement_with_map(&dataset, &config, &map).expect("fits");
        let report = EnergyEvaluator::new(&config)
            .with_runtime(runtime)
            .evaluate(&dataset, &plan)
            .expect("sized");
        println!(
            "{:<34} {:>12.3} {:>10.1} {:>9.2}%",
            label,
            report.energy.as_mwh(),
            report.extra_wire.as_meters(),
            report.mismatch_fraction() * 100.0
        );
    }
}
