//! E3 — regenerates **Fig. 2-(a)**: I-V characteristic curves of the
//! single-diode model, sweeping irradiance (dotted family) and temperature
//! (solid family).
//!
//! Prints CSV series; also summarizes the qualitative claims of the figure.
//!
//! Usage: `cargo run -p pv-bench --bin fig2_iv`

use pv_model::SingleDiodeModule;
use pv_units::{Celsius, Irradiance};

fn main() {
    let module = SingleDiodeModule::pv_mf165eb3().thermal_k(0.0);

    println!("# Fig 2-(a): I-V curves, PV-MF165EB3 single-diode model");
    println!("# family 1: G sweep at T = 25 degC");
    println!("curve,voltage_V,current_A");
    for &g in &[200.0, 400.0, 600.0, 800.0, 1000.0] {
        let curve = module.iv_curve(Irradiance::from_w_per_m2(g), Celsius::new(25.0), 40);
        for p in curve.points() {
            println!("G{g:.0},{:.3},{:.3}", p.voltage.value(), p.current.value());
        }
    }
    println!("# family 2: T sweep at G = 1000 W/m2");
    for &t in &[0.0, 25.0, 50.0, 75.0] {
        let curve = module.iv_curve(Irradiance::STC, Celsius::new(t), 40);
        for p in curve.points() {
            println!("T{t:.0},{:.3},{:.3}", p.voltage.value(), p.current.value());
        }
    }

    // The figure's qualitative claims, checked numerically.
    let g_lo = module.iv_curve(Irradiance::from_w_per_m2(500.0), Celsius::new(25.0), 200);
    let g_hi = module.iv_curve(Irradiance::STC, Celsius::new(25.0), 200);
    let t_lo = module.iv_curve(Irradiance::STC, Celsius::new(10.0), 200);
    let t_hi = module.iv_curve(Irradiance::STC, Celsius::new(60.0), 200);
    println!("\n# claims:");
    println!(
        "# Isc grows ~proportionally with G: Isc(1000)/Isc(500) = {:.3}",
        g_hi.isc().value() / g_lo.isc().value()
    );
    println!(
        "# Voc grows logarithmically with G: Voc(1000)-Voc(500) = {:.2} V",
        g_hi.voc().value() - g_lo.voc().value()
    );
    println!(
        "# higher T raises Isc slightly: Isc(60C)-Isc(10C) = {:.3} A",
        t_hi.isc().value() - t_lo.isc().value()
    );
    println!(
        "# higher T lowers Voc: Voc(60C)-Voc(10C) = {:.2} V",
        t_hi.voc().value() - t_lo.voc().value()
    );
}
