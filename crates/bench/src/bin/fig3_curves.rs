//! E2 — regenerates **Fig. 3**: power characteristics of the
//! PV-MF165EB3 empirical model.
//!
//! Left: P-V curves at several G (via the single-diode model).
//! Middle: normalized Pmax/Voc/Isc vs temperature.
//! Right: normalized Pmax/Voc/Isc vs irradiance.
//!
//! Usage: `cargo run -p pv-bench --bin fig3_curves`

use pv_model::{EmpiricalModule, ModuleModel, SingleDiodeModule};
use pv_units::{Celsius, Irradiance};

fn main() {
    let emp = EmpiricalModule::pv_mf165eb3().thermal_k(0.0);
    let phys = SingleDiodeModule::pv_mf165eb3().thermal_k(0.0);
    let t25 = Celsius::new(25.0);

    println!("# Fig 3 left: P-V curves at 25 degC");
    println!("series,voltage_V,power_W");
    for &g in &[200.0, 600.0, 1000.0] {
        let curve = phys.iv_curve(Irradiance::from_w_per_m2(g), t25, 40);
        for p in curve.points() {
            println!(
                "G{g:.0},{:.2},{:.2}",
                p.voltage.value(),
                p.power().as_watts()
            );
        }
    }

    println!("\n# Fig 3 middle: normalized characteristics vs cell temperature (G = 1000)");
    println!("t_degC,p_norm,voc_norm,isc_norm");
    let p_ref = emp.power(Irradiance::STC, t25).as_watts();
    let voc_ref = emp.voc(Irradiance::STC, t25).value();
    let isc_ref = emp.isc(Irradiance::STC, t25).value();
    for t in (0..=75).step_by(5) {
        let t_c = Celsius::new(f64::from(t));
        println!(
            "{t},{:.4},{:.4},{:.4}",
            emp.power(Irradiance::STC, t_c).as_watts() / p_ref,
            emp.voc(Irradiance::STC, t_c).value() / voc_ref,
            emp.isc(Irradiance::STC, t_c).value() / isc_ref,
        );
    }

    println!("\n# Fig 3 right: normalized characteristics vs irradiance (T = 25 degC)");
    println!("g_w_per_m2,p_norm,voc_norm,isc_norm");
    for g in (100..=1000).step_by(50) {
        let g_i = Irradiance::from_w_per_m2(f64::from(g));
        println!(
            "{g},{:.4},{:.4},{:.4}",
            emp.power(g_i, t25).as_watts() / p_ref,
            emp.voc(g_i, t25).value() / voc_ref,
            emp.isc(g_i, t25).value() / isc_ref,
        );
    }

    // The paper's headline reading of this figure (Sec. III-C): over
    // 200..1000 W/m2 power changes ~5x, while typical temperature ranges
    // change it by ~+/-20%.
    let p200 = emp.power(Irradiance::from_w_per_m2(200.0), t25).as_watts();
    let p1000 = emp.power(Irradiance::STC, t25).as_watts();
    let p_cold = emp.power(Irradiance::STC, Celsius::new(0.0)).as_watts();
    let p_hot = emp.power(Irradiance::STC, Celsius::new(60.0)).as_watts();
    println!("\n# claims:");
    println!(
        "# power ratio G=1000 vs G=200: {:.2}x (paper: ~5x)",
        p1000 / p200
    );
    println!(
        "# power swing over 0..60 degC: {:+.1}% / {:+.1}% (paper: within ~+/-20%)",
        (p_cold / p_ref - 1.0) * 100.0,
        (p_hot / p_ref - 1.0) * 100.0
    );
}
