//! E4 — regenerates **Fig. 6-(b)**: the 75th-percentile irradiance maps of
//! the three roofs (brighter = more irradiated).
//!
//! Writes one PGM image per roof to `target/figures/` and prints ASCII
//! previews.
//!
//! Usage: `cargo run -p pv-bench --bin fig6_irradiance --release [--fast|--smoke] [--threads N]`

use pv_bench::{extract_scenario_with, figures_dir, runtime_from_args, Resolution};
use pv_floorplan::{render, FloorplanConfig, SuitabilityMap};
use pv_gis::paper_roofs;
use pv_model::Topology;

fn main() {
    let resolution = Resolution::from_args();
    let runtime = runtime_from_args();
    let config =
        FloorplanConfig::paper(Topology::new(8, 2).expect("valid topology")).expect("paper config");
    let dir = figures_dir();
    println!("Fig 6-(b) reproduction — {}\n", resolution.label());

    for scenario in paper_roofs() {
        let dataset = extract_scenario_with(&scenario, resolution, runtime);
        let map = SuitabilityMap::compute(&dataset, &config);
        let g75 = map.irradiance_percentile();

        let (lo, hi) = g75.finite_range().unwrap_or((0.0, 0.0));
        println!(
            "{} — p75(G) range {:.0}..{:.0} W/m2, Ng = {}",
            scenario.name(),
            lo,
            hi,
            dataset.valid().count()
        );
        println!("{}", render::ascii_heatmap(g75, 110));

        let path = dir.join(format!("fig6_roof{}.pgm", scenario.roof.number()));
        render::write_pgm(g75, &path).expect("write PGM");
        println!("wrote {}\n", path.display());
    }
}
