use pv_bench::{extract_scenario, Resolution};
use pv_floorplan::*;
use pv_gis::{PaperRoof, RoofScenario};
use pv_model::Topology;

fn main() {
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let dataset = extract_scenario(&scenario, Resolution::Fast);
    let config = FloorplanConfig::paper(Topology::new(8, 4).unwrap()).unwrap();
    let map = SuitabilityMap::compute(&dataset, &config);
    let anchors = map.anchor_scores(config.footprint());
    let mut scores: Vec<f64> = anchors.iter().copied().filter(|s| s.is_finite()).collect();
    scores.sort_by(f64::total_cmp);
    let q = |p: f64| scores[((scores.len() - 1) as f64 * p) as usize];
    println!(
        "anchor scores: n={} min={:.1} p10={:.1} p50={:.1} p90={:.1} max={:.1}",
        scores.len(),
        q(0.0),
        q(0.1),
        q(0.5),
        q(0.9),
        q(1.0)
    );
    // cell-level spread
    let mut cs: Vec<f64> = map
        .scores()
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    cs.sort_by(f64::total_cmp);
    let cq = |p: f64| cs[((cs.len() - 1) as f64 * p) as usize];
    println!(
        "cell scores:   n={} min={:.1} p10={:.1} p50={:.1} p90={:.1} max={:.1}",
        cs.len(),
        cq(0.0),
        cq(0.1),
        cq(0.5),
        cq(0.9),
        cq(1.0)
    );

    let trad = traditional_placement_with_map(&dataset, &config, &map).unwrap();
    let prop = greedy_placement_with_map(&dataset, &config, &map).unwrap();
    println!("trad mean anchor score: {:.1}", trad.mean_anchor_score);
    println!("prop mean anchor score: {:.1}", prop.mean_anchor_score);
    let ev = EnergyEvaluator::new(&config);
    for (name, plan) in [("trad", &trad), ("prop", &prop)] {
        let r = ev.evaluate(&dataset, plan).unwrap();
        println!("{name}: net {:.3} MWh gross {:.3} unconstrained {:.3} mismatch {:.2}% wire {:.1}m loss {:.2} kWh",
            r.energy.as_mwh(), r.gross_energy.as_mwh(), r.sum_of_module_energy.as_mwh(),
            r.mismatch_fraction()*100.0, r.extra_wire.as_meters(), r.wiring_loss.as_kwh());
    }
}
