//! Pipeline diagnostics dump, plus the Sec. V-D before/after timing probe
//! (`--timings`) whose numbers are recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p pv_bench --bin diag --release [--fast|--smoke] [--threads N] [--timings]`
//!
//! `--fast`/`--smoke` select the diagnostics resolution (default: fast,
//! one year at hourly steps); the `--timings` probe is always pinned to
//! the 30-day smoke configuration so its numbers stay comparable across
//! runs (the EXPERIMENTS.md row is keyed to that scale). `--timings` also
//! prints a per-kernel breakdown of the lane-shaped hot loops (irradiance
//! census, fused transposition + operating-point pass, string
//! aggregation — each against its scalar reference shape) and rewrites
//! the machine-readable `BENCH_evaluator.json` at the repo root with the
//! proposal-loop and `kernel_*` numbers (same schema as the
//! `evaluator_throughput` bench).

use pv_bench::{
    extract_scenario_with, kernel_probe_timings, parse_harness_args, proposal_loop_timings,
    scalar_reference_energy, write_bench_records, HarnessArgs, Resolution,
};
use pv_floorplan::*;
use pv_gis::{PaperRoof, RoofScenario, Site, SolarExtractor};
use pv_model::Topology;
use pv_obs::{Histogram, Timer};
use pv_runtime::Runtime;

fn main() {
    let cli: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = parse_harness_args(&cli, &["--timings"]).and_then(|args| run(&args)) {
        eprintln!("Error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &HarnessArgs) -> Result<(), String> {
    let runtime = args.runtime();
    if args.has("--timings") {
        return timings(runtime);
    }
    // Default to fast: the paper resolution adds nothing to these
    // structural diagnostics.
    let resolution = args.resolution_or(Resolution::Fast);
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let dataset = extract_scenario_with(&scenario, resolution, runtime);
    let config = FloorplanConfig::paper(Topology::new(8, 4).unwrap()).unwrap();
    let map = SuitabilityMap::compute(&dataset, &config);
    let anchors = map.anchor_scores(config.footprint());
    let mut scores: Vec<f64> = anchors.iter().copied().filter(|s| s.is_finite()).collect();
    scores.sort_by(f64::total_cmp);
    let q = |p: f64| scores[((scores.len() - 1) as f64 * p) as usize];
    println!(
        "anchor scores: n={} min={:.1} p10={:.1} p50={:.1} p90={:.1} max={:.1}",
        scores.len(),
        q(0.0),
        q(0.1),
        q(0.5),
        q(0.9),
        q(1.0)
    );
    // cell-level spread
    let mut cs: Vec<f64> = map
        .scores()
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    cs.sort_by(f64::total_cmp);
    let cq = |p: f64| cs[((cs.len() - 1) as f64 * p) as usize];
    println!(
        "cell scores:   n={} min={:.1} p10={:.1} p50={:.1} p90={:.1} max={:.1}",
        cs.len(),
        cq(0.0),
        cq(0.1),
        cq(0.5),
        cq(0.9),
        cq(1.0)
    );

    let trad = traditional_placement_with_map(&dataset, &config, &map).unwrap();
    let prop = greedy_placement_with_map(&dataset, &config, &map).unwrap();
    println!("trad mean anchor score: {:.1}", trad.mean_anchor_score);
    println!("prop mean anchor score: {:.1}", prop.mean_anchor_score);
    let ev = EnergyEvaluator::new(&config).with_runtime(runtime);
    for (name, plan) in [("trad", &trad), ("prop", &prop)] {
        let r = ev.evaluate(&dataset, plan).unwrap();
        println!("{name}: net {:.3} MWh gross {:.3} unconstrained {:.3} mismatch {:.2}% wire {:.1}m loss {:.2} kWh",
            r.energy.as_mwh(), r.gross_energy.as_mwh(), r.sum_of_module_energy.as_mwh(),
            r.mismatch_fraction()*100.0, r.extra_wire.as_meters(), r.wiring_loss.as_kwh());
    }
    Ok(())
}

/// Times the solar extractor and the energy evaluator before/after the
/// `pv_runtime` refactor: scalar reference vs batched kernel, sequential
/// vs parallel. Roof 2, 30 days at hourly steps, N = 32.
fn timings(runtime: Runtime) -> Result<(), String> {
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let clock = Resolution::Smoke.clock();
    let config = FloorplanConfig::paper(Topology::new(8, 4).unwrap()).unwrap();
    println!(
        "Sec. V-D timing probe — Roof 2, {} steps, N = 32, {} worker thread(s)",
        clock.num_steps(),
        runtime.threads()
    );

    // Same histogram type the serving layer records into: per-rep spans
    // land in log buckets, but `sum`/`count` are exact, so the reported
    // mean loses nothing over raw Instant arithmetic.
    let time = |f: &mut dyn FnMut()| -> f64 {
        f(); // warm-up
        let mut hist = Histogram::new();
        for _ in 0..5 {
            let t = Timer::start();
            f();
            hist.record(t.elapsed_us());
        }
        hist.sum() as f64 / hist.count() as f64 / 1e3
    };

    let seq_extractor = SolarExtractor::new(Site::turin(), clock)
        .seed(pv_bench::WEATHER_SEED)
        .runtime(Runtime::sequential());
    let par_extractor = seq_extractor.clone().runtime(runtime);
    let t_extract_seq = time(&mut || {
        std::hint::black_box(seq_extractor.extract(&scenario.dsm));
    });
    let t_extract_par = time(&mut || {
        std::hint::black_box(par_extractor.extract(&scenario.dsm));
    });

    let dataset = par_extractor.extract(&scenario.dsm);
    let map = SuitabilityMap::compute(&dataset, &config);
    let plan = greedy_placement_with_map(&dataset, &config, &map).unwrap();
    let t_scalar = time(&mut || {
        std::hint::black_box(scalar_reference_energy(&dataset, &config, &plan));
    });
    let seq_eval = EnergyEvaluator::new(&config).with_runtime(Runtime::sequential());
    let par_eval = EnergyEvaluator::new(&config).with_runtime(runtime);
    let t_batched_seq = time(&mut || {
        std::hint::black_box(seq_eval.evaluate(&dataset, &plan).unwrap());
    });
    let t_batched_par = time(&mut || {
        std::hint::black_box(par_eval.evaluate(&dataset, &plan).unwrap());
    });

    println!("extractor  sequential        {t_extract_seq:9.1} ms");
    println!(
        "extractor  {} thread(s)       {t_extract_par:9.1} ms  ({:.2}x)",
        runtime.threads(),
        t_extract_seq / t_extract_par
    );
    println!("evaluator  scalar reference  {t_scalar:9.1} ms  (pre-refactor baseline)");
    println!(
        "evaluator  batched, 1 thread {t_batched_seq:9.1} ms  ({:.2}x vs scalar)",
        t_scalar / t_batched_seq
    );
    println!(
        "evaluator  batched, {} thr    {t_batched_par:9.1} ms  ({:.2}x vs scalar)",
        runtime.threads(),
        t_scalar / t_batched_par
    );

    // Anneal-style proposal loop (single relocate + re-score),
    // single-threaded: cold full re-integration vs incremental delta
    // evaluation over the trace caches.
    let proposals = proposal_loop_timings(&dataset, &config, &map, &plan, 200);
    println!(
        "proposal   cold re-score     {:9.2} ms  (relocate + full integration)",
        proposals.cold_ns_per_eval / 1e6
    );
    println!(
        "proposal   incremental       {:9.2} ms  ({:.2}x vs cold)",
        proposals.incremental_ns_per_eval / 1e6,
        proposals.speedup()
    );

    // Per-kernel breakdown of the lane-shaped hot loops: the census,
    // the fused transposition + operating-point pass, and the string
    // aggregation, each against the scalar shape it replaced.
    let kernels = kernel_probe_timings(&dataset, &config, &plan, 5);
    println!(
        "lane kernels ({} path):",
        if pv_gis::lanes::simd_active() {
            "avx2"
        } else {
            "portable"
        }
    );
    for k in &kernels.kernels {
        println!(
            "  {:<26} {:9.3} ms  (scalar {:9.3} ms, {:.2}x)",
            k.name,
            k.lane_ns_per_eval / 1e6,
            k.scalar_ns_per_eval / 1e6,
            k.speedup()
        );
    }

    let mut records = proposals
        .to_records(&pv_bench::proposal_probe_scale())
        .to_vec();
    records.extend(kernels.to_records(&pv_bench::proposal_probe_scale()));
    let path = write_bench_records("diag --timings", &records)
        .map_err(|e| format!("write BENCH_evaluator.json: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_paths_return_messages_not_panics() {
        let bad = vec!["--threads".to_string(), "zero".to_string()];
        let err = parse_harness_args(&bad, &["--timings"]).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let unknown = vec!["--bogus".to_string()];
        let err = parse_harness_args(&unknown, &["--timings"]).unwrap_err();
        assert!(err.contains("unknown flag '--bogus'"), "{err}");
    }

    #[test]
    fn timings_flag_and_resolution_parse() {
        let cli = vec!["--timings".to_string(), "--smoke".to_string()];
        let args = parse_harness_args(&cli, &["--timings"]).expect("valid");
        assert!(args.has("--timings"));
        assert_eq!(args.resolution_or(Resolution::Fast), Resolution::Smoke);
    }
}
