//! Load generator for the placement service: replays a corpus-derived
//! request mix over **real TCP** and writes the machine-readable
//! `BENCH_server.json` (throughput, latency percentiles, cache hit rate).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pv_bench --bin loadgen -- \
//!     [--addr HOST:PORT | --spawn] [--requests N] [--clients C] \
//!     [--sites K] [--seed S] [--threads N] [--out PATH]
//!     [--restart-recovery] [--store-dir PATH]
//!     [--router] [--shards-max N]
//! ```
//!
//! With `--spawn` (the default when `--addr` is absent) an in-process
//! [`pv_server::Server`] is started on an ephemeral port at CI-smoke
//! scale and shut down after the run — the traffic still crosses a real
//! socket, so the measurement includes the full HTTP path.
//!
//! The mix has two phases, and the artifact one record per phase:
//!
//! 1. **cold** — one request per site, sequential: every request misses
//!    the per-site cache and pays extraction.
//! 2. **warm_mix** — `N` requests from `C` concurrent client threads
//!    cycling through the same `K` sites: every request hits the warm
//!    cache. The cold-vs-warm p50 gap is the cache's measured value.
//!
//! `--restart-recovery` (spawn mode only) appends two more phases that
//! measure what the snapshot store buys across a restart: the first
//! server runs with a store at `--store-dir` (default
//! `target/loadgen_store`) and persists its extractions; then
//! **restart_cold** replays one request per site against a fresh
//! storeless server (the price of a restart without persistence), and
//! **restart_hydrated** does the same against a fresh server hydrated
//! from the store. Both rows carry `store_hit_rate`, and the harness
//! asserts the two servers answered byte-identically — persistence is a
//! latency feature, never a correctness one.
//!
//! `--router` (spawn mode only) appends the **throughput-vs-shards
//! curve**: for each shard count `k` in `1..=--shards-max` (default 3)
//! it starts a consistent-hash [`Router`] fronting `k` real `pvplan
//! serve` worker processes (the `pvplan` binary must sit next to the
//! `loadgen` binary — build both in the same profile), replays the
//! corpus cold, runs the warm mix through the proxy, and emits one
//! `shards_k` record carrying `shards` and `cpus` fields. The harness
//! asserts every shard count answered byte-identically (the
//! ordering-insensitive [`compare_response_sets`]); `check_bench_json`
//! gates the scaling ratio on hosts where `cpus` makes it meaningful.
//!
//! After every phase the harness scrapes `pv_place_ok_total` from the
//! target's `/v1/metrics` and asserts the counter's delta equals the
//! number of requests it sent — the server-side accounting (fleet-merged
//! when the target is a router) must agree with the client's ledger.
//!
//! Bad flags exit 1 with an `Error:` message, never a panic.

use pv_bench::json;
use pv_gis::ScenarioSpec;
use pv_obs::Timer;
use pv_runtime::Runtime;
use pv_server::http::send_request;
use pv_server::{PlacementService, Router, RouterConfig, Server, ServiceConfig};
use pv_store::SiteStore;
use std::net::SocketAddr;
use std::sync::Arc;

#[derive(Clone, Debug, PartialEq, Eq)]
struct LoadgenArgs {
    addr: Option<String>,
    requests: usize,
    clients: usize,
    sites: usize,
    seed: u64,
    threads: usize,
    out: Option<String>,
    restart_recovery: bool,
    store_dir: String,
    router: bool,
    shards_max: usize,
}

/// Parses the harness flags. Pure — no I/O, no exits — so the error
/// paths are unit-testable.
fn parse_loadgen_args(args: &[String]) -> Result<LoadgenArgs, String> {
    let mut parsed = LoadgenArgs {
        addr: None,
        requests: 200,
        clients: 4,
        sites: 8,
        seed: pv_gis::synth::CORPUS_SEED,
        threads: 2,
        out: None,
        restart_recovery: false,
        store_dir: "target/loadgen_store".to_string(),
        router: false,
        shards_max: 3,
    };
    let mut spawn = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let positive = |name: &str, spec: &str| -> Result<usize, String> {
            match spec.parse() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{name} expects a positive integer, got '{spec}'")),
            }
        };
        match flag.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")?.clone()),
            "--spawn" => spawn = true,
            "--requests" => parsed.requests = positive("--requests", value("--requests")?)?,
            "--clients" => parsed.clients = positive("--clients", value("--clients")?)?,
            "--sites" => parsed.sites = positive("--sites", value("--sites")?)?,
            "--threads" => parsed.threads = positive("--threads", value("--threads")?)?,
            "--seed" => {
                let spec = value("--seed")?;
                parsed.seed = spec
                    .parse()
                    .map_err(|e| format!("--seed expects an integer, got '{spec}' ({e})"))?;
            }
            "--out" => parsed.out = Some(value("--out")?.clone()),
            "--restart-recovery" => parsed.restart_recovery = true,
            "--store-dir" => parsed.store_dir = value("--store-dir")?.clone(),
            "--router" => parsed.router = true,
            "--shards-max" => {
                let spec = value("--shards-max")?;
                parsed.shards_max = match spec.parse() {
                    Ok(n) if (1..=8).contains(&n) => n,
                    _ => return Err(format!("--shards-max expects 1..=8, got '{spec}'")),
                };
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if spawn && parsed.addr.is_some() {
        return Err("--spawn and --addr are mutually exclusive".into());
    }
    if parsed.restart_recovery && parsed.addr.is_some() {
        return Err("--restart-recovery needs spawn mode (it restarts the server)".into());
    }
    if parsed.router && parsed.addr.is_some() {
        return Err("--router needs spawn mode (it starts its own worker fleets)".into());
    }
    Ok(parsed)
}

/// Fires `bodies[i]` for every index in `0..bodies.len()`, spread over
/// `clients` threads (client `c` takes indices `c, c+C, …`), and returns
/// all request latencies in microseconds. Any non-200 aborts the run.
fn run_phase(addr: SocketAddr, bodies: &[String], clients: usize) -> Result<Vec<u64>, String> {
    let clients = clients.min(bodies.len()).max(1);
    // pvlint: allow(D03): load-generator clients are wall-clock actors by design; no placement result flows through them
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut latencies = Vec::new();
                    for body in bodies.iter().skip(c).step_by(clients) {
                        let t0 = Timer::start();
                        let (status, response) =
                            send_request(addr, "POST", "/v1/place", body.as_bytes())
                                .map_err(|e| format!("request failed: {e}"))?;
                        if status != 200 {
                            return Err(format!("HTTP {status}: {response}"));
                        }
                        latencies.push(t0.elapsed_us());
                    }
                    Ok(latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    Ok(results.concat())
}

/// Nearest-rank percentile in milliseconds over unsorted µs samples —
/// the server's own percentile rule ([`pv_server::percentile_us`]), so
/// client- and `/v1/stats`-side numbers in one artifact row always agree
/// on methodology.
fn percentile_ms(latencies_us: &[u64], q: f64) -> f64 {
    pv_server::percentile_us(latencies_us, q) / 1e3
}

/// Reads the server's cumulative `(cache_hits, cache_misses)` counters
/// from `/v1/stats`.
fn cache_counts(addr: SocketAddr) -> Result<(f64, f64), String> {
    let (status, stats) =
        send_request(addr, "GET", "/v1/stats", b"").map_err(|e| format!("stats failed: {e}"))?;
    if status != 200 {
        return Err(format!("stats returned HTTP {status}"));
    }
    let stats = json::parse(&stats).map_err(|e| format!("stats body: {e}"))?;
    let number = |key: &str| -> Result<f64, String> {
        stats
            .get(key)
            .and_then(json::JsonValue::as_number)
            .ok_or_else(|| format!("stats body missing numeric '{key}'"))
    };
    Ok((number("cache_hits")?, number("cache_misses")?))
}

/// One artifact record: shared `bench`/`scale`/`name` core + the server
/// measurements (the schema `check_bench_json` enforces). Restart phases
/// additionally carry `store_hit_rate` — how many of the phase's
/// requests were answered from a store-hydrated cache entry. Router
/// phases (`shards_k`) carry `shards` and `cpus`, so the scaling gate in
/// `check_bench_json` can tell a real multi-core measurement from a
/// single-core container where shards only time-slice.
fn record_core(
    scale: &str,
    name: &str,
    latencies_us: &[u64],
    wall_s: f64,
    cache_hit_rate: f64,
    store_hit_rate: Option<f64>,
    shard_info: Option<(usize, usize)>,
) -> json::JsonValue {
    let mut builder = json::ObjectBuilder::new()
        .field("bench", "server_loadgen")
        .field("scale", scale)
        .field("name", name)
        .field("requests", latencies_us.len())
        .field(
            "rps",
            json::rounded(latencies_us.len() as f64 / wall_s.max(1e-9), 1),
        )
        .field(
            "p50_ms",
            json::rounded(percentile_ms(latencies_us, 0.50), 3),
        )
        .field(
            "p99_ms",
            json::rounded(percentile_ms(latencies_us, 0.99), 3),
        )
        .field("cache_hit_rate", json::rounded(cache_hit_rate, 4));
    if let Some(rate) = store_hit_rate {
        builder = builder.field("store_hit_rate", json::rounded(rate, 4));
    }
    if let Some((shards, cpus)) = shard_info {
        builder = builder.field("shards", shards).field("cpus", cpus);
    }
    builder.build()
}

fn record(
    scale: &str,
    name: &str,
    latencies_us: &[u64],
    wall_s: f64,
    cache_hit_rate: f64,
    store_hit_rate: Option<f64>,
) -> json::JsonValue {
    record_core(
        scale,
        name,
        latencies_us,
        wall_s,
        cache_hit_rate,
        store_hit_rate,
        None,
    )
}

/// Per-phase cache hit rate from before/after `(hits, misses)` counter
/// snapshots, so prior traffic never contaminates a phase's number.
fn phase_rate(before: (f64, f64), after: (f64, f64)) -> f64 {
    let lookups = (after.0 + after.1) - (before.0 + before.1);
    if lookups <= 0.0 {
        0.0
    } else {
        (after.0 - before.0) / lookups
    }
}

/// Reads one numeric field from `/v1/stats`.
fn stat_number(addr: SocketAddr, key: &str) -> Result<f64, String> {
    let (status, stats) =
        send_request(addr, "GET", "/v1/stats", b"").map_err(|e| format!("stats failed: {e}"))?;
    if status != 200 {
        return Err(format!("stats returned HTTP {status}"));
    }
    json::parse(&stats)
        .map_err(|e| format!("stats body: {e}"))?
        .get(key)
        .and_then(json::JsonValue::as_number)
        .ok_or_else(|| format!("stats body missing numeric '{key}'"))
}

/// Extracts one counter's value from Prometheus exposition text. Pure,
/// so the parsing is unit-testable: `# HELP`/`# TYPE` comment lines are
/// skipped by the prefix match, and the mandatory space after the metric
/// name keeps `pv_place_ok_total` from matching a longer name it
/// prefixes.
fn counter_from_exposition(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
        })
        .and_then(|value| value.trim().parse().ok())
}

/// Scrapes `pv_place_ok_total` from the target's `/v1/metrics`. Against
/// a router this is the fleet-merged counter, so the cross-check also
/// exercises the stats fan-out.
fn scrape_place_ok(addr: SocketAddr) -> Result<u64, String> {
    let (status, body) = send_request(addr, "GET", "/v1/metrics", b"")
        .map_err(|e| format!("metrics scrape failed: {e}"))?;
    if status != 200 {
        return Err(format!("metrics returned HTTP {status}"));
    }
    counter_from_exposition(&body, "pv_place_ok_total")
        .ok_or_else(|| "metrics exposition missing pv_place_ok_total".to_string())
}

/// The request-accounting cross-check: after each phase the scraped
/// `pv_place_ok_total` delta must equal the number of requests the
/// harness actually sent — every 200 the clients saw was counted exactly
/// once, through routers and respawns alike.
fn check_place_counter(label: &str, before: u64, after: u64, sent: usize) -> Result<(), String> {
    let counted = after.saturating_sub(before);
    if counted == sent as u64 {
        Ok(())
    } else {
        Err(format!(
            "{label}: sent {sent} request(s) but pv_place_ok_total moved by {counted} — \
             the server lost or double-counted requests"
        ))
    }
}

/// Replays the corpus sequentially, keeping both latencies and response
/// bodies — the shared measurement + evidence-gathering pass behind the
/// restart-recovery and router byte-identity assertions.
fn replay_corpus(addr: SocketAddr, bodies: &[String]) -> Result<(Vec<u64>, Vec<String>), String> {
    let mut latencies = Vec::with_capacity(bodies.len());
    let mut responses = Vec::with_capacity(bodies.len());
    for body in bodies {
        let t0 = Timer::start();
        let (status, response) = send_request(addr, "POST", "/v1/place", body.as_bytes())
            .map_err(|e| format!("request failed: {e}"))?;
        if status != 200 {
            return Err(format!("HTTP {status}: {response}"));
        }
        latencies.push(t0.elapsed_us());
        responses.push(response);
    }
    Ok((latencies, responses))
}

/// Asserts two response sets are byte-exact up to ordering: both sides
/// sorted, then compared element-wise. Ordering-insensitivity matters
/// because concurrent replays complete in arrival order, which is not
/// deterministic — the *bytes served* are the contract, not the order
/// they came back in. Returns the first divergence as an error.
fn compare_response_sets(label: &str, want: &[String], got: &[String]) -> Result<(), String> {
    if want.len() != got.len() {
        return Err(format!(
            "{label}: {} response(s) vs {} — a request was dropped or duplicated",
            want.len(),
            got.len()
        ));
    }
    let mut want_sorted: Vec<&String> = want.iter().collect();
    let mut got_sorted: Vec<&String> = got.iter().collect();
    want_sorted.sort();
    got_sorted.sort();
    for (i, (want, got)) in want_sorted.iter().zip(&got_sorted).enumerate() {
        if want != got {
            let preview = |s: &str| s.chars().take(120).collect::<String>();
            return Err(format!(
                "{label}: response sets diverge at sorted index {i}:\n  want: {}\n  got:  {}",
                preview(want),
                preview(got)
            ));
        }
    }
    Ok(())
}

/// Spawns an in-process smoke-scale server, optionally store-backed
/// (hydrating before it binds, like `pvplan serve --store-dir`).
fn spawn_server(
    threads: usize,
    store_dir: Option<&str>,
) -> Result<(Server, Arc<PlacementService>), String> {
    let mut service = PlacementService::new(ServiceConfig::smoke());
    if let Some(dir) = store_dir {
        let store = SiteStore::open(dir).map_err(|e| format!("opening store '{dir}': {e}"))?;
        service = service.with_store(Arc::new(store));
    }
    let service = Arc::new(service);
    service
        .hydrate_store()
        .map_err(|e| format!("hydrating store: {e}"))?;
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        Runtime::with_threads(threads),
        64,
    )
    .map_err(|e| format!("spawning server: {e}"))?;
    Ok((server, service))
}

/// The throughput-vs-shards curve: for each shard count `k`, a
/// consistent-hash router fronting `k` real `pvplan serve` processes
/// takes the cold replay (byte-identity evidence) and the warm mix (the
/// `shards_k` record). Every shard count must serve the same bytes; the
/// recorded `cpus` lets the bench gate skip the scaling ratio on hosts
/// where extra processes can only time-slice one core.
fn run_router_curve(
    args: &LoadgenArgs,
    bodies: &[String],
    scale: &str,
    records: &mut Vec<json::JsonValue>,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("locating loadgen binary: {e}"))?;
    let pvplan = exe
        .parent()
        .map(|dir| dir.join("pvplan"))
        .filter(|p| p.exists())
        .ok_or(
            "pvplan binary not found next to loadgen; \
             build it first: cargo build --release -p pvfloorplan --bin pvplan",
        )?;
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let mix: Vec<String> = (0..args.requests)
        .map(|r| bodies[r % bodies.len()].clone())
        .collect();
    let mut reference: Option<Vec<String>> = None;
    for shards in 1..=args.shards_max {
        let root = std::path::PathBuf::from(&args.store_dir).join(format!("shards_{shards}"));
        if root.exists() {
            std::fs::remove_dir_all(&root)
                .map_err(|e| format!("clearing store '{}': {e}", root.display()))?;
        }
        let mut config = RouterConfig::new(shards, &pvplan, &root);
        config.worker_args = vec![
            "serve".into(),
            "--profile".into(),
            "smoke".into(),
            "--threads".into(),
            args.threads.to_string(),
        ];
        let router = Arc::new(
            Router::start(config).map_err(|e| format!("starting {shards}-shard fleet: {e}"))?,
        );
        let transport = Runtime::with_threads(args.threads * shards + 2);
        let server = Server::bind("127.0.0.1:0", Arc::clone(&router), transport, 64)
            .map_err(|e| format!("binding router front end: {e}"))?;
        let addr = server.local_addr();
        eprintln!("loadgen: {shards}-shard fleet up at {addr}...");

        // Cold replay: the byte-identity evidence across shard counts.
        let ok_start = scrape_place_ok(addr)?;
        let (_, responses) = replay_corpus(addr, bodies)?;
        match &reference {
            None => reference = Some(responses),
            Some(want) => compare_response_sets(
                &format!("router byte-identity (shards_{shards} vs shards_1)"),
                want,
                &responses,
            )?,
        }
        let ok_cold = scrape_place_ok(addr)?;
        check_place_counter(
            &format!("shards_{shards} cold replay"),
            ok_start,
            ok_cold,
            bodies.len(),
        )?;

        // Warm mix through the proxy: the throughput measurement.
        let before = cache_counts(addr)?;
        let t0 = Timer::start();
        let warm = run_phase(addr, &mix, args.clients)?;
        let wall = t0.elapsed_us() as f64 / 1e6;
        let after = cache_counts(addr)?;
        check_place_counter(
            &format!("shards_{shards} warm mix"),
            ok_cold,
            scrape_place_ok(addr)?,
            mix.len(),
        )?;
        println!(
            "shards_{shards}: {:>5} req, p50 {:>8.2} ms, p99 {:>8.2} ms, {:.1} req/s ({cpus} cpu(s))",
            warm.len(),
            percentile_ms(&warm, 0.5),
            percentile_ms(&warm, 0.99),
            warm.len() as f64 / wall.max(1e-9),
        );
        records.push(record_core(
            scale,
            &format!("shards_{shards}"),
            &warm,
            wall,
            phase_rate(before, after),
            None,
            Some((shards, cpus)),
        ));
        server.shutdown();
    }
    Ok(())
}

fn run(args: &LoadgenArgs) -> Result<(), String> {
    // Target: an external server, or a spawned in-process one (still real
    // TCP on a real ephemeral port). In restart-recovery mode the first
    // server is store-backed so its extractions persist across restarts.
    let store_dir = args.restart_recovery.then_some(args.store_dir.as_str());
    if let Some(dir) = store_dir {
        // A stale store would warm the "cold" phase: start from scratch.
        if std::path::Path::new(dir).exists() {
            std::fs::remove_dir_all(dir).map_err(|e| format!("clearing store '{dir}': {e}"))?;
        }
    }
    let mut spawned = match &args.addr {
        Some(_) => None,
        None => Some(spawn_server(args.threads, store_dir)?),
    };
    let addr: SocketAddr = match (&args.addr, &spawned) {
        (Some(addr), _) => addr.parse().map_err(|e| format!("--addr '{addr}': {e}"))?,
        (None, Some((server, _))) => server.local_addr(),
        _ => unreachable!(),
    };

    // Liveness gate before measuring anything.
    let (status, body) = send_request(addr, "GET", "/v1/healthz", b"")
        .map_err(|e| format!("healthz failed: {e}"))?;
    if status != 200 {
        return Err(format!("healthz returned HTTP {status}: {body}"));
    }

    let bodies: Vec<String> = (0..args.sites)
        .map(|i| ScenarioSpec::generate(args.seed, i as u32).to_spec_string())
        .collect();
    eprintln!(
        "loadgen: {} site(s), {} request(s), {} client(s) against {addr}...",
        args.sites, args.requests, args.clients
    );

    // Phase 1 — cold: one sequential request per site (cache misses on a
    // fresh server). Hit rates are computed as *per-phase deltas* of the
    // server's counters, so prior traffic on an external `--addr` server
    // never contaminates a phase's number.
    let before_cold = cache_counts(addr)?;
    let ok_start = scrape_place_ok(addr)?;
    let t0 = Timer::start();
    let cold = run_phase(addr, &bodies, 1)?;
    let cold_wall = t0.elapsed_us() as f64 / 1e6;
    let before_warm = cache_counts(addr)?;
    let ok_cold = scrape_place_ok(addr)?;
    check_place_counter("cold", ok_start, ok_cold, bodies.len())?;

    // Phase 2 — warm mix: N requests cycling the same sites, concurrent.
    let mix: Vec<String> = (0..args.requests)
        .map(|r| bodies[r % bodies.len()].clone())
        .collect();
    let t0 = Timer::start();
    let warm = run_phase(addr, &mix, args.clients)?;
    let warm_wall = t0.elapsed_us() as f64 / 1e6;
    let after_warm = cache_counts(addr)?;
    check_place_counter("warm_mix", ok_cold, scrape_place_ok(addr)?, mix.len())?;

    let hit_rate = phase_rate(before_warm, after_warm);

    let scale = format!(
        "{} sites, {} clients, seed {}, smoke clock",
        args.sites, args.clients, args.seed
    );
    let mut records = vec![
        record(
            &scale,
            "cold",
            &cold,
            cold_wall,
            phase_rate(before_cold, before_warm),
            None,
        ),
        record(&scale, "warm_mix", &warm, warm_wall, hit_rate, None),
    ];

    let restart = if args.restart_recovery {
        // Shut the first server down: its accept loop drains the store's
        // write-behind queue, so every extraction is committed on disk.
        let (server, service) = spawned
            .take()
            .ok_or("--restart-recovery needs spawn mode")?;
        server.shutdown();
        drop(service);

        // Restart A — no store: the baseline price of coming back cold.
        let (server, _) = spawn_server(args.threads, None)?;
        let t0 = Timer::start();
        let (cold_lat, cold_responses) = replay_corpus(server.local_addr(), &bodies)?;
        let restart_cold_wall = t0.elapsed_us() as f64 / 1e6;
        check_place_counter(
            "restart_cold",
            0,
            scrape_place_ok(server.local_addr())?,
            bodies.len(),
        )?;
        server.shutdown();

        // Restart B — hydrated from the snapshot store.
        let (server, service) = spawn_server(args.threads, store_dir)?;
        let t0 = Timer::start();
        let (hydrated_lat, hydrated_responses) = replay_corpus(server.local_addr(), &bodies)?;
        let hydrated_wall = t0.elapsed_us() as f64 / 1e6;
        check_place_counter(
            "restart_hydrated",
            0,
            scrape_place_ok(server.local_addr())?,
            bodies.len(),
        )?;
        let store_hits = stat_number(server.local_addr(), "store_hits")?;
        let cache_hits = stat_number(server.local_addr(), "cache_hits")?;
        let snapshots = stat_number(server.local_addr(), "store_hydrated")?;
        server.shutdown();
        drop(service);

        // The acceptance gate: persistence must be invisible in the bytes.
        compare_response_sets(
            "restart recovery (hydrated vs storeless baseline)",
            &cold_responses,
            &hydrated_responses,
        )?;
        let n = bodies.len() as f64;
        records.push(record(
            &scale,
            "restart_cold",
            &cold_lat,
            restart_cold_wall,
            0.0,
            Some(0.0),
        ));
        records.push(record(
            &scale,
            "restart_hydrated",
            &hydrated_lat,
            hydrated_wall,
            cache_hits / n,
            Some(store_hits / n),
        ));
        Some((cold_lat, hydrated_lat, store_hits / n, snapshots))
    } else {
        None
    };

    if args.router {
        run_router_curve(args, &bodies, &scale, &mut records)?;
    }

    let doc = json::render_record_array(&records);
    let path = match &args.out {
        Some(path) => std::path::PathBuf::from(path),
        None => pv_bench::server_json_path(),
    };
    std::fs::write(&path, &doc).map_err(|e| format!("writing {}: {e}", path.display()))?;

    println!(
        "cold:     {:>5} req, p50 {:>8.2} ms, p99 {:>8.2} ms",
        cold.len(),
        percentile_ms(&cold, 0.5),
        percentile_ms(&cold, 0.99)
    );
    println!(
        "warm mix: {:>5} req, p50 {:>8.2} ms, p99 {:>8.2} ms, {:.1} req/s, hit rate {:.3}",
        warm.len(),
        percentile_ms(&warm, 0.5),
        percentile_ms(&warm, 0.99),
        warm.len() as f64 / warm_wall.max(1e-9),
        hit_rate
    );
    println!(
        "server counters this run: {} hit(s), {} miss(es)",
        after_warm.0 - before_cold.0,
        after_warm.1 - before_cold.1,
    );
    if let Some((cold_lat, hydrated_lat, store_hit_rate, snapshots)) = restart {
        println!(
            "restart cold:     {:>5} req, p50 {:>8.2} ms (no store)",
            cold_lat.len(),
            percentile_ms(&cold_lat, 0.5),
        );
        println!(
            "restart hydrated: {:>5} req, p50 {:>8.2} ms, store hit rate {:.3} \
             ({snapshots} snapshot(s) hydrated, responses byte-identical)",
            hydrated_lat.len(),
            percentile_ms(&hydrated_lat, 0.5),
            store_hit_rate,
        );
    }
    println!("wrote {}", path.display());

    if let Some((server, _)) = spawned {
        server.shutdown();
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_loadgen_args(&args).and_then(|parsed| run(&parsed));
    if let Err(e) = result {
        eprintln!("Error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_the_documented_flags() {
        let parsed = parse_loadgen_args(&strings(&[
            "--spawn",
            "--requests",
            "50",
            "--clients",
            "3",
            "--sites",
            "2",
            "--seed",
            "5",
            "--threads",
            "1",
            "--out",
            "x.json",
        ]))
        .unwrap();
        assert_eq!(parsed.requests, 50);
        assert_eq!(parsed.clients, 3);
        assert_eq!(parsed.sites, 2);
        assert_eq!(parsed.seed, 5);
        assert_eq!(parsed.threads, 1);
        assert_eq!(parsed.addr, None);
        assert_eq!(parsed.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn error_paths_return_messages_not_panics() {
        for (args, needle) in [
            (vec!["--requests", "0"], "--requests expects a positive"),
            (vec!["--clients", "-1"], "--clients expects a positive"),
            (vec!["--sites", "many"], "--sites expects a positive"),
            (vec!["--addr"], "--addr needs a value"),
            (vec!["--bogus"], "unknown flag"),
            (
                vec!["--spawn", "--addr", "127.0.0.1:1"],
                "mutually exclusive",
            ),
        ] {
            let err = parse_loadgen_args(&strings(&args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }
    }

    #[test]
    fn percentiles_are_nearest_rank_in_ms() {
        let us: Vec<u64> = (1..=1000).map(|i| i * 1000).collect();
        assert_eq!(percentile_ms(&us, 0.5), 500.0);
        assert_eq!(percentile_ms(&us, 0.99), 990.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn records_match_the_server_schema_shape() {
        let r = record("s", "cold", &[1000, 2000], 0.5, 0.25, None);
        assert_eq!(r.get("bench").unwrap().as_str(), Some("server_loadgen"));
        assert_eq!(r.get("requests").unwrap().as_number(), Some(2.0));
        assert_eq!(r.get("rps").unwrap().as_number(), Some(4.0));
        assert!(r.get("p50_ms").unwrap().as_number().unwrap() > 0.0);
        assert_eq!(r.get("cache_hit_rate").unwrap().as_number(), Some(0.25));
        assert!(
            r.get("store_hit_rate").is_none(),
            "non-restart rows omit it"
        );

        let r = record("s", "restart_hydrated", &[1000], 0.5, 1.0, Some(1.0));
        assert_eq!(r.get("store_hit_rate").unwrap().as_number(), Some(1.0));
    }

    #[test]
    fn exposition_counter_parses_values_and_skips_comments() {
        let text = "# HELP pv_place_ok_total Successful /v1/place solves.\n\
                    # TYPE pv_place_ok_total counter\n\
                    pv_place_ok_totals 9\n\
                    pv_place_ok_total 42\n\
                    pv_requests_total 50\n";
        assert_eq!(counter_from_exposition(text, "pv_place_ok_total"), Some(42));
        assert_eq!(counter_from_exposition(text, "pv_requests_total"), Some(50));
        assert_eq!(counter_from_exposition(text, "pv_errors_total"), None);
        assert_eq!(counter_from_exposition("", "pv_place_ok_total"), None);
    }

    #[test]
    fn place_counter_check_demands_an_exact_delta() {
        assert_eq!(check_place_counter("p", 10, 15, 5), Ok(()));
        let err = check_place_counter("cold", 10, 14, 5).unwrap_err();
        assert!(
            err.contains("cold") && err.contains("sent 5") && err.contains("moved by 4"),
            "{err}"
        );
        // A counter that went backwards (impossible without a bug) fails.
        assert!(check_place_counter("p", 10, 8, 2).is_err());
    }

    #[test]
    fn response_set_comparison_is_ordering_insensitive_but_byte_exact() {
        let a: Vec<String> = ["alpha", "beta", "gamma"]
            .iter()
            .map(ToString::to_string)
            .collect();
        // Any permutation of the same bytes passes.
        let permuted: Vec<String> = ["gamma", "alpha", "beta"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(compare_response_sets("p", &a, &permuted), Ok(()));

        // A single flipped byte fails, naming the divergence.
        let mut flipped = permuted.clone();
        flipped[0] = "gamme".to_string();
        let err = compare_response_sets("flip", &a, &flipped).unwrap_err();
        assert!(err.contains("flip") && err.contains("diverge"), "{err}");

        // A dropped response fails on the count, not a zip truncation.
        let err = compare_response_sets("len", &a, &a[..2]).unwrap_err();
        assert!(err.contains("3 response(s) vs 2"), "{err}");
    }

    #[test]
    fn router_flags_parse_and_validate() {
        let parsed = parse_loadgen_args(&strings(&["--router", "--shards-max", "2"])).unwrap();
        assert!(parsed.router);
        assert_eq!(parsed.shards_max, 2);
        let defaults = parse_loadgen_args(&[]).unwrap();
        assert!(!defaults.router);
        assert_eq!(defaults.shards_max, 3);
        for (args, needle) in [
            (vec!["--shards-max", "0"], "--shards-max expects 1..=8"),
            (vec!["--shards-max", "9"], "--shards-max expects 1..=8"),
            (vec!["--router", "--addr", "127.0.0.1:1"], "spawn mode"),
        ] {
            let err = parse_loadgen_args(&strings(&args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }
    }

    #[test]
    fn shard_records_carry_shards_and_cpus() {
        let r = record_core("s", "shards_2", &[1000], 0.5, 0.9, None, Some((2, 4)));
        assert_eq!(r.get("shards").unwrap().as_number(), Some(2.0));
        assert_eq!(r.get("cpus").unwrap().as_number(), Some(4.0));
        let plain = record("s", "warm_mix", &[1000], 0.5, 0.9, None);
        assert!(plain.get("shards").is_none(), "plain rows omit shards");
    }

    #[test]
    fn restart_recovery_flags_parse_and_validate() {
        let parsed =
            parse_loadgen_args(&strings(&["--restart-recovery", "--store-dir", "d"])).unwrap();
        assert!(parsed.restart_recovery);
        assert_eq!(parsed.store_dir, "d");
        // Default store dir, off by default.
        let defaults = parse_loadgen_args(&[]).unwrap();
        assert!(!defaults.restart_recovery);
        assert_eq!(defaults.store_dir, "target/loadgen_store");
        // Restarting an external server is not something we can do.
        let err = parse_loadgen_args(&strings(&["--restart-recovery", "--addr", "127.0.0.1:1"]))
            .unwrap_err();
        assert!(err.contains("spawn mode"), "{err}");
    }
}
