//! Portfolio runner harness: score a scenario corpus with the full placer
//! ensemble and write the machine-readable `BENCH_portfolio.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pv_bench --bin portfolio -- \
//!     [--preset paper3|smoke|diverse64|stress256] [--seed S] \
//!     [--threads N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` switches to the CI-smoke options (2-day coarse clock, small
//! topologies); the default is the standard 30-day hourly portfolio.
//! Scenario results are bit-identical for every `--threads` setting; only
//! the per-scenario wall-clock column varies.

use pv_bench::portfolio::{drive, PortfolioOptions};
use pv_gis::CorpusPreset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    let preset_name = value_of("--preset").unwrap_or("smoke");
    let Some(preset) = CorpusPreset::from_name(preset_name) else {
        eprintln!(
            "Error: unknown preset '{preset_name}' (expected one of {})",
            CorpusPreset::all().map(|p| p.name()).join(", ")
        );
        std::process::exit(2);
    };
    let seed = match value_of("--seed") {
        None => pv_gis::synth::CORPUS_SEED,
        Some(v) => match v.parse() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("Error: --seed expects an integer, got '{v}' ({e})");
                std::process::exit(2);
            }
        },
    };

    let runtime = pv_bench::runtime_from_args();
    let opts = if args.iter().any(|a| a == "--smoke") {
        PortfolioOptions::smoke(runtime)
    } else {
        PortfolioOptions::standard(runtime)
    };

    if let Err(e) = drive(preset, seed, &opts, value_of("--out")) {
        eprintln!("Error: writing BENCH_portfolio.json failed: {e}");
        std::process::exit(1);
    }
}
