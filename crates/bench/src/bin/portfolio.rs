//! Portfolio runner harness: score a scenario corpus with the full placer
//! ensemble and write the machine-readable `BENCH_portfolio.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pv_bench --bin portfolio -- \
//!     [--preset paper3|smoke|diverse64|stress256] [--seed S] \
//!     [--threads N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` switches to the CI-smoke options (2-day coarse clock, small
//! topologies); the default is the standard 30-day hourly portfolio.
//! Scenario results are bit-identical for every `--threads` setting; only
//! the per-scenario wall-clock column varies.
//!
//! Bad flags exit 1 with an `Error:` message (the workspace CLI
//! convention) — never a panic.

use pv_bench::portfolio::{drive, PortfolioOptions};
use pv_gis::CorpusPreset;
use pv_runtime::Runtime;

/// Parsed portfolio flags.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PortfolioArgs {
    preset: CorpusPreset,
    seed: u64,
    threads: Option<usize>,
    smoke: bool,
    out: Option<String>,
}

/// Parses the harness flags. Pure — no I/O, no exits — so the error
/// paths are unit-testable.
fn parse_portfolio_args(args: &[String]) -> Result<PortfolioArgs, String> {
    let mut parsed = PortfolioArgs {
        preset: CorpusPreset::Smoke,
        seed: pv_gis::synth::CORPUS_SEED,
        threads: None,
        smoke: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--preset" => {
                let name = value("--preset")?;
                parsed.preset = CorpusPreset::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown preset '{name}' (expected one of {})",
                        CorpusPreset::all().map(|p| p.name()).join(", ")
                    )
                })?;
            }
            "--seed" => {
                let spec = value("--seed")?;
                parsed.seed = spec
                    .parse()
                    .map_err(|e| format!("--seed expects an integer, got '{spec}' ({e})"))?;
            }
            "--threads" => {
                let spec = value("--threads")?;
                parsed.threads = Some(pv_runtime::parse_threads(spec).ok_or_else(|| {
                    format!("--threads expects a positive integer, got '{spec}'")
                })?);
            }
            "--smoke" => parsed.smoke = true,
            "--out" => parsed.out = Some(value("--out")?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_portfolio_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("Error: {e}");
            std::process::exit(1);
        }
    };
    let runtime = parsed
        .threads
        .map_or_else(Runtime::from_env, Runtime::with_threads);
    let opts = if parsed.smoke {
        PortfolioOptions::smoke(runtime)
    } else {
        PortfolioOptions::standard(runtime)
    };
    if let Err(e) = drive(parsed.preset, parsed.seed, &opts, parsed.out.as_deref()) {
        eprintln!("Error: writing BENCH_portfolio.json failed: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_the_documented_flags() {
        let parsed = parse_portfolio_args(&strings(&[
            "--preset",
            "paper3",
            "--seed",
            "9",
            "--threads",
            "4",
            "--smoke",
            "--out",
            "artifact.json",
        ]))
        .unwrap();
        assert_eq!(parsed.preset, CorpusPreset::Paper3);
        assert_eq!(parsed.seed, 9);
        assert_eq!(parsed.threads, Some(4));
        assert!(parsed.smoke);
        assert_eq!(parsed.out.as_deref(), Some("artifact.json"));
    }

    #[test]
    fn defaults_match_the_ci_invocation() {
        let parsed = parse_portfolio_args(&[]).unwrap();
        assert_eq!(parsed.preset, CorpusPreset::Smoke);
        assert_eq!(parsed.seed, pv_gis::synth::CORPUS_SEED);
        assert_eq!(parsed.threads, None);
        assert!(!parsed.smoke);
    }

    #[test]
    fn error_paths_return_messages_not_panics() {
        for (args, needle) in [
            (vec!["--preset", "bogus"], "unknown preset 'bogus'"),
            (vec!["--preset"], "--preset needs a value"),
            (vec!["--threads", "0"], "--threads expects a positive"),
            (vec!["--threads", "-3"], "--threads expects a positive"),
            (vec!["--threads"], "--threads needs a value"),
            (vec!["--seed", "NaN"], "--seed expects an integer"),
            (vec!["--cache", "x"], "unknown flag '--cache'"),
        ] {
            let err = parse_portfolio_args(&strings(&args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }
        // The unknown-preset message lists every valid preset.
        let err = parse_portfolio_args(&strings(&["--preset", "x"])).unwrap_err();
        for preset in CorpusPreset::all() {
            assert!(err.contains(preset.name()), "{err}");
        }
    }
}
