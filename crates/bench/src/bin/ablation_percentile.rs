//! A1 — ablation of the suitability metric: percentile choice and the
//! temperature correction factor, on Roof 2 (N = 16).
//!
//! The paper argues the average is a poor signature of skewed irradiance
//! distributions and picks the 75th percentile with an f(T) correction;
//! this harness quantifies that choice.
//!
//! Usage: `cargo run -p pv-bench --bin ablation_percentile --release [--fast|--smoke] [--threads N]`

use pv_bench::{extract_scenario_with, runtime_from_args, Resolution};
use pv_floorplan::{greedy_placement_with_map, EnergyEvaluator, FloorplanConfig, SuitabilityMap};
use pv_gis::{PaperRoof, RoofScenario};
use pv_model::Topology;
use pv_runtime::Runtime;

fn main() {
    let resolution = Resolution::from_args();
    let runtime = runtime_from_args();
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let dataset = extract_scenario_with(&scenario, resolution, runtime);
    let topology = Topology::new(8, 2).expect("valid topology");

    println!(
        "A1: suitability-metric ablation — {} (Roof 2, N = 16)\n",
        resolution.label()
    );
    println!("{:<28} {:>12} {:>9}", "metric", "energy MWh", "vs p75+fT");

    let reference = run(
        &dataset,
        FloorplanConfig::paper(topology).expect("config"),
        runtime,
    );
    for (label, config) in [
        (
            "p50 (median) + f(T)",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_percentile(0.5),
        ),
        (
            "p75 + f(T)  [paper]",
            FloorplanConfig::paper(topology).expect("config"),
        ),
        (
            "p90 + f(T)",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_percentile(0.9),
        ),
        (
            "p75, no T correction",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_temperature_correction(false),
        ),
        (
            "p25 (avg-like proxy)",
            FloorplanConfig::paper(topology)
                .expect("config")
                .with_percentile(0.25),
        ),
    ] {
        let energy = run(&dataset, config, runtime);
        println!(
            "{:<28} {:>12.3} {:>+8.2}%",
            label,
            energy,
            (energy / reference - 1.0) * 100.0
        );
    }
}

fn run(dataset: &pv_gis::SolarDataset, config: FloorplanConfig, runtime: Runtime) -> f64 {
    let map = SuitabilityMap::compute(dataset, &config);
    let plan = greedy_placement_with_map(dataset, &config, &map).expect("fits");
    EnergyEvaluator::new(&config)
        .with_runtime(runtime)
        .evaluate(dataset, &plan)
        .expect("sized")
        .energy
        .as_mwh()
}
