//! E6 — regenerates the **Sec. V-C overhead assessment**: wiring power,
//! energy and cost overheads of the sparse placements.
//!
//! Paper figures to match in shape: ~0.11 W per metre at 4 A; ~0.5 kWh per
//! metre per year; overhead ~0.05%/m of yearly production; worst-case extra
//! wire ~20 m; cost ~1 $/m.
//!
//! Usage: `cargo run -p pv-bench --bin overhead --release [--fast|--smoke] [--threads N]`

use pv_bench::{extract_scenario_with, runtime_from_args, Resolution};
use pv_floorplan::{greedy_placement_with_map, EnergyEvaluator, FloorplanConfig, SuitabilityMap};
use pv_gis::paper_roofs;
use pv_model::{Topology, WiringSpec};
use pv_units::{Amperes, Meters};

fn main() {
    let resolution = Resolution::from_args();
    let runtime = runtime_from_args();
    println!("Sec. V-C overhead assessment — {}\n", resolution.label());

    // Static cable characterization (paper's conservative numbers).
    let spec = WiringSpec::awg10();
    let p_per_m = spec.power_loss(Meters::new(1.0), Amperes::new(4.0));
    println!(
        "cable: AWG10, {:.0} mohm/m, {} $/m",
        7.0,
        spec.cost_per_meter()
    );
    println!(
        "loss at 4 A: {:.3} W/m (paper ~0.11 W/m); {:.2} kWh/m/yr at 50% duty (paper ~0.5)",
        p_per_m.as_watts(),
        p_per_m.as_watts() * 8760.0 * 0.5 / 1000.0
    );
    println!();

    println!(
        "{:<8} {:>3} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "Roof", "N", "energy MWh", "wire m", "loss kWh", "loss %", "%/m"
    );
    for scenario in paper_roofs() {
        let dataset = extract_scenario_with(&scenario, resolution, runtime);
        for n in [16usize, 32] {
            let topology = Topology::new(8, n / 8).expect("paper topology");
            let config = FloorplanConfig::paper(topology).expect("paper config");
            let map = SuitabilityMap::compute(&dataset, &config);
            let plan = greedy_placement_with_map(&dataset, &config, &map).expect("fits");
            let report = EnergyEvaluator::new(&config)
                .with_runtime(runtime)
                .evaluate(&dataset, &plan)
                .expect("sized");
            let loss_pct = report.wiring_loss_fraction() * 100.0;
            let wire = report.extra_wire.as_meters();
            println!(
                "{:<8} {:>3} {:>12.3} {:>12.1} {:>12.2} {:>9.3}% {:>8.4}%",
                scenario.name(),
                n,
                report.energy.as_mwh(),
                wire,
                report.wiring_loss.as_kwh(),
                loss_pct,
                if wire > 0.0 { loss_pct / wire } else { 0.0 },
            );
        }
    }
    println!("\npaper claims: overhead ~0.05%/m, worst-case wire ~20 m -> negligible");
}
