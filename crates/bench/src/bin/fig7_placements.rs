//! E5 — regenerates **Fig. 7**: traditional (a-c) vs proposed (d-f)
//! placements for N = 32 on the three roofs. Digits are series-string
//! indices (panels with the same digit are connected in series), `.` is
//! free suitable area, `x` is unusable.
//!
//! Usage: `cargo run -p pv-bench --bin fig7_placements --release [--fast|--smoke] [--threads N]`

use pv_bench::{extract_scenario_with, runtime_from_args, Resolution};
use pv_floorplan::{
    greedy_placement_with_map, render, traditional_placement_with_map, EnergyEvaluator,
    FloorplanConfig, SuitabilityMap,
};
use pv_gis::paper_roofs;
use pv_model::Topology;

fn main() {
    let resolution = Resolution::from_args();
    let runtime = runtime_from_args();
    let config =
        FloorplanConfig::paper(Topology::new(8, 4).expect("valid topology")).expect("paper config");
    println!(
        "Fig 7 reproduction (N = 32, 4 strings of 8) — {}\n",
        resolution.label()
    );

    for scenario in paper_roofs() {
        let dataset = extract_scenario_with(&scenario, resolution, runtime);
        let map = SuitabilityMap::compute(&dataset, &config);
        let evaluator = EnergyEvaluator::new(&config).with_runtime(runtime);

        let traditional =
            traditional_placement_with_map(&dataset, &config, &map).expect("compact block fits");
        let proposed = greedy_placement_with_map(&dataset, &config, &map).expect("greedy fits");
        let e_trad = evaluator.evaluate(&dataset, &traditional).expect("sized");
        let e_prop = evaluator.evaluate(&dataset, &proposed).expect("sized");

        println!(
            "=== {} — traditional {:.3} MWh ===",
            scenario.name(),
            e_trad.energy.as_mwh()
        );
        println!(
            "{}",
            render::ascii_placement(&traditional, dataset.valid(), 110)
        );
        println!(
            "=== {} — proposed {:.3} MWh ({:+.2}%), extra wire {:.1} m ===",
            scenario.name(),
            e_prop.energy.as_mwh(),
            e_prop.energy.percent_gain_over(e_trad.energy),
            e_prop.extra_wire.as_meters()
        );
        println!(
            "{}",
            render::ascii_placement(&proposed, dataset.valid(), 110)
        );
    }
}
