//! End-to-end acceptance test of the scenario corpus + portfolio runner:
//! the `diverse64` preset runs to completion through `run_portfolio`, its
//! scenario results are bit-identical at 1 and 4 threads, and the corpus
//! actually is diverse (all four roof archetypes at low/mid/high
//! latitudes).
//!
//! Runs at a deliberately tiny clock/horizon resolution so the full
//! 64-scenario sweep stays cheap in debug builds; determinism and
//! coverage are resolution-independent.

use pv_bench::portfolio::{run_portfolio, PortfolioOptions, PortfolioRecord};
use pvfloorplan::gis::synth::LATITUDE_BANDS;
use pvfloorplan::prelude::*;
use std::collections::BTreeSet;

fn tiny_options(threads: usize) -> PortfolioOptions {
    PortfolioOptions {
        clock: SimulationClock::days_at_minutes(1, 240),
        runtime: Runtime::with_threads(threads),
        anneal_iterations: 4,
        exact_budget: 200,
        horizon_sectors: 8,
        max_modules: 4,
    }
}

#[test]
fn diverse64_is_thread_count_invariant_and_diverse() {
    let corpus = ScenarioCorpus::preset(CorpusPreset::Diverse64);
    assert_eq!(corpus.len(), 64);

    let seq = run_portfolio(&corpus, &tiny_options(1));
    let par = run_portfolio(&corpus, &tiny_options(4));
    assert_eq!(seq.len(), 64, "diverse64 must run to completion");

    // Scenario results (everything but wall-clock) are bit-identical on
    // any thread count — the workspace determinism guarantee extended to
    // whole-portfolio scale.
    let lines = |rs: &[PortfolioRecord]| {
        rs.iter()
            .map(PortfolioRecord::deterministic_line)
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&seq), lines(&par));

    // Every scenario produced a real site and a real placement score.
    for record in &seq {
        assert!(record.ng > 0, "{}: no placeable cells", record.scenario);
        assert!(
            record.series * record.strings > 0,
            "{}: topology ladder found no fit",
            record.scenario
        );
        assert!(record.greedy_wh > 0.0, "{}", record.scenario);
        assert!(
            record.anneal_wh >= record.greedy_wh - 1e-9,
            "{}: anneal regressed below its greedy start",
            record.scenario
        );
    }

    // Diversity floor: at least 4 distinct archetypes × 3 latitude bands.
    let mut archetypes = BTreeSet::new();
    let mut pairs = BTreeSet::new();
    for record in &seq {
        let band = LATITUDE_BANDS
            .iter()
            .position(|&(lo, hi)| (lo..=hi).contains(&record.latitude_deg))
            .expect("latitude inside a band");
        archetypes.insert(record.archetype.clone());
        pairs.insert((record.archetype.clone(), band));
    }
    assert!(archetypes.len() >= 4, "archetypes seen: {archetypes:?}");
    assert_eq!(pairs.len(), 12, "4 archetypes x 3 bands: {pairs:?}");
}
