//! Cross-crate integration tests: the full DSM → dataset → placement →
//! energy pipeline through the public facade.

use pvfloorplan::floorplan::{
    greedy_placement_with_map, traditional_placement_with_map, FloorplanError,
};
use pvfloorplan::prelude::*;

fn obstructed_roof() -> pvfloorplan::gis::Dsm {
    RoofBuilder::new(Meters::new(14.0), Meters::new(6.0))
        .tilt(Degrees::new(26.0))
        .azimuth(Degrees::new(195.0))
        .undulation(Degrees::new(5.0), Meters::new(4.0), 11)
        .obstacle(Obstacle::hvac_unit(
            Meters::new(6.0),
            Meters::new(4.2),
            Meters::new(2.2),
        ))
        .obstacle(Obstacle::chimney(
            Meters::new(11.0),
            Meters::new(1.0),
            Meters::new(0.8),
            Meters::new(0.8),
            Meters::new(1.8),
        ))
        .obstacle(Obstacle::off_roof_block(
            Meters::new(0.0),
            Meters::new(5.8),
            Meters::new(14.0),
            Meters::new(0.2),
            Meters::new(3.0),
        ))
        .build()
}

fn dataset(days: u32) -> SolarDataset {
    SolarExtractor::new(Site::turin(), SimulationClock::days_at_minutes(days, 60))
        .seed(99)
        .extract(&obstructed_roof())
}

#[test]
fn pipeline_produces_consistent_energies() {
    let data = dataset(20);
    let config = FloorplanConfig::paper(Topology::new(4, 2).unwrap()).unwrap();
    let map = SuitabilityMap::compute(&data, &config);
    let evaluator = EnergyEvaluator::new(&config);

    let compact = traditional_placement_with_map(&data, &config, &map).unwrap();
    let sparse = greedy_placement_with_map(&data, &config, &map).unwrap();
    let e_compact = evaluator.evaluate(&data, &compact).unwrap();
    let e_sparse = evaluator.evaluate(&data, &sparse).unwrap();

    // Both plans produce energy; structural inequalities hold.
    for report in [&e_compact, &e_sparse] {
        assert!(report.energy.as_wh() > 0.0);
        assert!(report.gross_energy.as_wh() >= report.energy.as_wh());
        assert!(report.sum_of_module_energy.as_wh() >= report.gross_energy.as_wh() - 1e-9);
    }
    // Greedy's chosen cells are at least as suitable as the block's.
    assert!(sparse.mean_anchor_score >= compact.mean_anchor_score - 1e-9);
}

#[test]
fn energy_scales_with_simulated_duration() {
    let config = FloorplanConfig::paper(Topology::new(2, 1).unwrap()).unwrap();
    let short = dataset(5);
    let long = dataset(20);
    let plan_short = greedy_placement(&short, &config).unwrap();
    let e_short = EnergyEvaluator::new(&config)
        .evaluate(&short, &plan_short)
        .unwrap();
    // Re-evaluate the same placement on the longer dataset.
    let e_long = EnergyEvaluator::new(&config)
        .evaluate(&long, &plan_short)
        .unwrap();
    // 4x the days (same season) should give roughly 4x the energy.
    let ratio = e_long.energy.as_wh() / e_short.energy.as_wh();
    assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn determinism_across_full_pipeline() {
    let config = FloorplanConfig::paper(Topology::new(4, 2).unwrap()).unwrap();
    let a = dataset(10);
    let b = dataset(10);
    let plan_a = greedy_placement(&a, &config).unwrap();
    let plan_b = greedy_placement(&b, &config).unwrap();
    assert_eq!(plan_a.placement.modules(), plan_b.placement.modules());
    let e_a = EnergyEvaluator::new(&config).evaluate(&a, &plan_a).unwrap();
    let e_b = EnergyEvaluator::new(&config).evaluate(&b, &plan_b).unwrap();
    assert_eq!(e_a.energy, e_b.energy);
}

#[test]
fn greedy_beats_or_ties_traditional_on_the_paper_roofs_smoke() {
    // Smoke-scale check of the headline claim on a real paper roof.
    let scenario = RoofScenario::build(PaperRoof::Roof2);
    let data = SolarExtractor::new(Site::turin(), SimulationClock::days_at_minutes(30, 120))
        .seed(2018)
        .extract(&scenario.dsm);
    let config = FloorplanConfig::paper(Topology::new(8, 2).unwrap()).unwrap();
    let map = SuitabilityMap::compute(&data, &config);
    let evaluator = EnergyEvaluator::new(&config);
    let compact = traditional_placement_with_map(&data, &config, &map).unwrap();
    let sparse = greedy_placement_with_map(&data, &config, &map).unwrap();
    let e_c = evaluator.evaluate(&data, &compact).unwrap();
    let e_s = evaluator.evaluate(&data, &sparse).unwrap();
    assert!(
        e_s.energy.as_wh() > e_c.energy.as_wh(),
        "proposed {} vs traditional {}",
        e_s.energy.as_wh(),
        e_c.energy.as_wh()
    );
}

#[test]
fn impossible_requests_error_cleanly() {
    let data = dataset(2);
    // 64 modules cannot fit a 14 x 6 m roof with obstacles.
    let config = FloorplanConfig::paper(Topology::new(8, 8).unwrap()).unwrap();
    match greedy_placement(&data, &config) {
        Err(FloorplanError::NotEnoughSpace { placed, requested }) => {
            assert_eq!(requested, 64);
            assert!(placed < 64);
        }
        other => panic!("expected NotEnoughSpace, got {other:?}"),
    }
}

#[test]
fn paper_scenarios_reconstruct_published_geometry() {
    for scenario in paper_roofs() {
        assert_eq!(scenario.dsm.dims(), scenario.roof.published_dims());
        assert!(
            scenario.ng_deviation() < 0.03,
            "{} Ng {} vs {}",
            scenario.name(),
            scenario.dsm.valid().count(),
            scenario.roof.published_ng()
        );
    }
}

#[test]
fn portrait_orientation_places_and_evaluates() {
    // Extension beyond the paper: same pipeline with modules rotated 90°.
    let data = dataset(10);
    let landscape = FloorplanConfig::paper(Topology::new(4, 2).unwrap()).unwrap();
    let portrait = landscape.clone().with_portrait_modules();
    let evaluator_l = EnergyEvaluator::new(&landscape);
    let evaluator_p = EnergyEvaluator::new(&portrait);
    let plan_l = greedy_placement(&data, &landscape).unwrap();
    let plan_p = greedy_placement(&data, &portrait).unwrap();
    assert_eq!(plan_p.placement.footprint().width_cells(), 4);
    assert_eq!(plan_p.placement.footprint().height_cells(), 8);
    let e_l = evaluator_l.evaluate(&data, &plan_l).unwrap();
    let e_p = evaluator_p.evaluate(&data, &plan_p).unwrap();
    // Both orientations produce comparable energy (same module, same roof).
    let ratio = e_p.energy.as_wh() / e_l.energy.as_wh();
    assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
}

#[test]
fn wiring_overhead_is_marginal_as_claimed() {
    // Sec. V-C: the proposed placement's wiring loss is a fraction of a
    // percent of the produced energy.
    let data = dataset(20);
    let config = FloorplanConfig::paper(Topology::new(4, 2).unwrap()).unwrap();
    let plan = greedy_placement(&data, &config).unwrap();
    let report = EnergyEvaluator::new(&config)
        .evaluate(&data, &plan)
        .unwrap();
    assert!(
        report.wiring_loss_fraction() < 0.02,
        "wiring loss fraction {}",
        report.wiring_loss_fraction()
    );
}
