//! End-to-end acceptance test of the placement service: the determinism
//! contract over real TCP.
//!
//! Starts the server on an ephemeral port with different worker counts,
//! fires identical and interleaved requests from several client threads,
//! and asserts **byte-identical response bodies** across thread counts,
//! arrival orders and cache states (cold vs warm) — the serving-side
//! extension of the pinning in `tests/portfolio.rs`.

use pvfloorplan::prelude::*;
use pvfloorplan::server::http::send_request;
use pvfloorplan::server::{PlacementService, Server, ServiceConfig};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// The request mix: distinct sites, a repeated site, an explicit
/// topology, an annealing request with a pinned seed — every shape the
/// service accepts, each appearing at least twice so warm-cache repeats
/// are part of the schedule.
fn request_bodies() -> Vec<String> {
    let spec = |i: u32| ScenarioSpec::generate(2018, i).to_spec_string();
    vec![
        spec(0),
        spec(1),
        format!(
            r#"{{"spec": "{}", "placer": "anneal", "seed": 7}}"#,
            spec(2)
        ),
        format!(r#"{{"spec": "{}", "series": 2, "strings": 1}}"#, spec(0)),
        spec(0), // repeat of a known site: must hit the warm cache
        spec(1),
        format!(
            r#"{{"spec": "{}", "placer": "anneal", "seed": 7}}"#,
            spec(2)
        ),
    ]
}

/// Sends every request from `clients` threads, each walking the list in
/// a different rotation (different arrival orders, concurrent and
/// interleaved), and returns `request index -> set of response bodies`.
fn fire_interleaved(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
) -> BTreeMap<usize, Vec<String>> {
    let responses = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for k in 0..bodies.len() {
                        let idx = (k + c) % bodies.len(); // rotated order
                        let (status, body) =
                            send_request(addr, "POST", "/v1/place", bodies[idx].as_bytes())
                                .expect("request transport");
                        assert_eq!(status, 200, "request {idx}: {body}");
                        out.push((idx, body));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    let mut by_request: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, body) in responses {
        by_request.entry(idx).or_default().push(body);
    }
    by_request
}

fn start_server(threads: usize) -> Server {
    let config = ServiceConfig::tiny();
    let service = Arc::new(PlacementService::new(config));
    Server::bind("127.0.0.1:0", service, Runtime::with_threads(threads), 16)
        .expect("bind ephemeral port")
}

#[test]
fn malformed_place_requests_get_a_deterministic_400_not_a_dropped_connection() {
    // Every malformed body must produce a structured 400 whose bytes are
    // a pure function of the request: identical on repeat, identical
    // across worker counts, and carrying no timing or cache metadata.
    let bad_bodies = [
        "{".to_string(),                 // truncated JSON
        r#"{"spec": 3}"#.to_string(),    // wrong type
        "not a spec at all".to_string(), // not a spec string
        r#"{"days": 9000}"#.to_string(), // out-of-range knob
    ];
    let mut canonical: Option<Vec<String>> = None;
    for threads in [1usize, 3] {
        let server = start_server(threads);
        let mut first_pass = Vec::new();
        for round in 0..2 {
            for (i, body) in bad_bodies.iter().enumerate() {
                let (status, response) =
                    send_request(server.local_addr(), "POST", "/v1/place", body.as_bytes())
                        .expect("transport stays up on malformed bodies");
                assert_eq!(status, 400, "body {i}: {response}");
                let parsed = pvfloorplan::json::parse(&response).expect("structured error body");
                assert!(
                    parsed.get("error").and_then(|v| v.as_str()).is_some(),
                    "body {i}: {response}"
                );
                for leak in ["latency", "p50", "p99", "cache", "hit"] {
                    assert!(
                        !response.contains(leak),
                        "error body leaks '{leak}': {response}"
                    );
                }
                if round == 0 {
                    first_pass.push(response);
                } else {
                    assert_eq!(
                        response, first_pass[i],
                        "400 for body {i} changed between repeats at {threads} thread(s)"
                    );
                }
            }
        }
        match &canonical {
            None => canonical = Some(first_pass),
            Some(reference) => assert_eq!(
                reference, &first_pass,
                "400 bodies changed between worker counts"
            ),
        }
        server.shutdown();
    }
}

#[test]
fn responses_are_bit_identical_across_thread_counts_and_arrival_orders() {
    let bodies = request_bodies();
    let mut canonical: Option<BTreeMap<usize, String>> = None;

    for threads in [1usize, 3] {
        let server = start_server(threads);
        let by_request = fire_interleaved(server.local_addr(), &bodies, 4);

        // Within one server: every client, every arrival order, every
        // cache state produced the same bytes per request.
        let mut unique: BTreeMap<usize, String> = BTreeMap::new();
        for (idx, responses) in by_request {
            assert_eq!(responses.len(), 4, "request {idx} answered once per client");
            for response in &responses {
                assert_eq!(
                    *response, responses[0],
                    "request {idx} diverged across clients/orders at {threads} thread(s)"
                );
            }
            unique.insert(idx, responses[0].clone());
        }

        // The repeated entries of the mix are identical requests — their
        // responses must be identical too (cold-vs-warm cannot leak).
        assert_eq!(unique[&0], unique[&4]);
        assert_eq!(unique[&1], unique[&5]);
        assert_eq!(unique[&2], unique[&6]);

        // Across servers: thread count changes nothing.
        match &canonical {
            None => canonical = Some(unique),
            Some(reference) => {
                assert_eq!(
                    reference, &unique,
                    "responses changed between 1 and {threads} worker threads"
                );
            }
        }

        // The warm cache actually fired: the mix repeats sites, so the
        // server must report hits, and the responses parse as placements.
        let (status, stats) = send_request(server.local_addr(), "GET", "/v1/stats", b"").unwrap();
        assert_eq!(status, 200);
        let stats = pvfloorplan::json::parse(&stats).unwrap();
        let hits = stats.get("cache_hits").unwrap().as_number().unwrap();
        let misses = stats.get("cache_misses").unwrap().as_number().unwrap();
        assert!(hits > 0.0, "no cache hits despite repeated sites");
        // Three distinct sites in the mix; racing cold requests for the
        // same site may each record a miss (the benign build race the
        // service documents), so ≥ 3 — but hits must still dominate.
        assert!(misses >= 3.0, "misses {misses}");
        assert_eq!(hits + misses, 28.0, "7 requests x 4 clients");
        server.shutdown();
    }

    // Spot-check the response contents once: a real placement with energy.
    let reference = canonical.expect("at least one server ran");
    let parsed = pvfloorplan::json::parse(&reference[&0]).unwrap();
    assert!(parsed.get("energy_wh").unwrap().as_number().unwrap() > 0.0);
    assert!(!parsed
        .get("modules")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    let explicit = pvfloorplan::json::parse(&reference[&3]).unwrap();
    assert_eq!(explicit.get("series").unwrap().as_number(), Some(2.0));
    assert_eq!(explicit.get("strings").unwrap().as_number(), Some(1.0));
}
