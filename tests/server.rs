//! End-to-end acceptance test of the placement service: the determinism
//! contract over real TCP.
//!
//! Starts the server on an ephemeral port with different worker counts,
//! fires identical and interleaved requests from several client threads,
//! and asserts **byte-identical response bodies** across thread counts,
//! arrival orders and cache states (cold vs warm) — the serving-side
//! extension of the pinning in `tests/portfolio.rs`.
//!
//! The shard-router tests at the bottom extend the same contract across
//! process boundaries: a real `pvplan route` fleet (router + N worker
//! processes over TCP) must answer byte-identically to the in-process
//! server at any shard count, and keep doing so through a `kill -9` of
//! one worker.

use pvfloorplan::json::JsonValue;
use pvfloorplan::prelude::*;
use pvfloorplan::server::http::send_request;
use pvfloorplan::server::{place_shard_key, HashRing, PlacementService, Server, ServiceConfig};
use pvfloorplan::store::SiteStore;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The request mix: distinct sites, a repeated site, an explicit
/// topology, an annealing request with a pinned seed — every shape the
/// service accepts, each appearing at least twice so warm-cache repeats
/// are part of the schedule.
fn request_bodies() -> Vec<String> {
    let spec = |i: u32| ScenarioSpec::generate(2018, i).to_spec_string();
    vec![
        spec(0),
        spec(1),
        format!(
            r#"{{"spec": "{}", "placer": "anneal", "seed": 7}}"#,
            spec(2)
        ),
        format!(r#"{{"spec": "{}", "series": 2, "strings": 1}}"#, spec(0)),
        spec(0), // repeat of a known site: must hit the warm cache
        spec(1),
        format!(
            r#"{{"spec": "{}", "placer": "anneal", "seed": 7}}"#,
            spec(2)
        ),
    ]
}

/// Sends every request from `clients` threads, each walking the list in
/// a different rotation (different arrival orders, concurrent and
/// interleaved), and returns `request index -> set of response bodies`.
fn fire_interleaved(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
) -> BTreeMap<usize, Vec<String>> {
    let responses = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for k in 0..bodies.len() {
                        let idx = (k + c) % bodies.len(); // rotated order
                        let (status, body) =
                            send_request(addr, "POST", "/v1/place", bodies[idx].as_bytes())
                                .expect("request transport");
                        assert_eq!(status, 200, "request {idx}: {body}");
                        out.push((idx, body));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    let mut by_request: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, body) in responses {
        by_request.entry(idx).or_default().push(body);
    }
    by_request
}

fn start_server(threads: usize) -> Server {
    let config = ServiceConfig::tiny();
    let service = Arc::new(PlacementService::new(config));
    Server::bind("127.0.0.1:0", service, Runtime::with_threads(threads), 16)
        .expect("bind ephemeral port")
}

/// Starts a store-backed server, hydrating first; returns the server and
/// its (shared) service so the test can read counters after shutdown.
fn start_store_server(dir: &std::path::Path) -> (Server, Arc<PlacementService>) {
    let store = Arc::new(SiteStore::open(dir).expect("open store"));
    let service = Arc::new(PlacementService::new(ServiceConfig::tiny()).with_store(store));
    service.hydrate_store().expect("hydrate store");
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        Runtime::with_threads(2),
        16,
    )
    .expect("bind ephemeral port");
    (server, service)
}

fn post_place(addr: SocketAddr, body: &str) -> String {
    let (status, response) =
        send_request(addr, "POST", "/v1/place", body.as_bytes()).expect("transport");
    assert_eq!(status, 200, "{response}");
    response
}

fn stat(addr: SocketAddr, field: &str) -> f64 {
    let (status, stats) = send_request(addr, "GET", "/v1/stats", b"").expect("transport");
    assert_eq!(status, 200);
    pvfloorplan::json::parse(&stats)
        .expect("stats JSON")
        .get(field)
        .and_then(|v| v.as_number())
        .unwrap_or_else(|| panic!("stats field {field} missing"))
}

#[test]
fn restart_recovery_serves_identical_bytes_and_survives_full_store_corruption() {
    let dir = std::env::temp_dir().join(format!("pvserve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let bodies: Vec<String> = (0..2)
        .map(|i| ScenarioSpec::generate(2018, i).to_spec_string())
        .collect();

    // The no-store baseline: the bytes every later life must reproduce.
    let baseline_server = start_server(2);
    let baseline: Vec<String> = bodies
        .iter()
        .map(|b| post_place(baseline_server.local_addr(), b))
        .collect();
    baseline_server.shutdown();

    // Life 1: a store-backed server takes the same traffic cold. The
    // store must be invisible in the bytes; shutdown drains the
    // write-behind queue so both snapshots are committed.
    let (server, service) = start_store_server(&dir);
    for (body, expected) in bodies.iter().zip(&baseline) {
        assert_eq!(
            &post_place(server.local_addr(), body),
            expected,
            "write-behind persistence changed response bytes"
        );
    }
    server.shutdown();
    let store = service.store().expect("store attached");
    assert_eq!(store.counters().writes(), 2, "drain committed both sites");
    drop(service);

    // Life 2 ("kill -9 then restart"): a fresh process image hydrates the
    // snapshots and answers warm — same bytes, zero cold extractions.
    let (server, service) = start_store_server(&dir);
    assert_eq!(service.store().expect("store").counters().hydrated(), 2);
    for (body, expected) in bodies.iter().zip(&baseline) {
        assert_eq!(
            &post_place(server.local_addr(), body),
            expected,
            "hydrated responses diverged from the cold baseline"
        );
    }
    assert_eq!(stat(server.local_addr(), "cache_misses"), 0.0);
    assert_eq!(stat(server.local_addr(), "store_hits"), 2.0);
    assert_eq!(stat(server.local_addr(), "store_hydrated"), 2.0);
    server.shutdown();
    drop(service);

    // Life 3: every snapshot is corrupted on disk. The server must
    // quarantine them all, fall back to cold extraction, and still serve
    // the exact baseline bytes.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("list store") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "pvsnap") {
            let mut bytes = std::fs::read(&path).expect("read snapshot");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("corrupt snapshot");
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 2, "both snapshots corrupted");
    let (server, service) = start_store_server(&dir);
    assert_eq!(service.store().expect("store").counters().quarantined(), 2);
    for (body, expected) in bodies.iter().zip(&baseline) {
        assert_eq!(
            &post_place(server.local_addr(), body),
            expected,
            "corrupted-store fallback diverged from the no-store baseline"
        );
    }
    assert_eq!(stat(server.local_addr(), "store_hits"), 0.0);
    assert_eq!(stat(server.local_addr(), "cache_misses"), 2.0);
    assert_eq!(stat(server.local_addr(), "store_quarantined"), 2.0);
    server.shutdown();
    let quarantined = std::fs::read_dir(&dir)
        .expect("list store")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".quarantined"))
        .count();
    assert_eq!(quarantined, 2, "damaged files kept aside for forensics");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_place_requests_get_a_deterministic_400_not_a_dropped_connection() {
    // Every malformed body must produce a structured 400 whose bytes are
    // a pure function of the request: identical on repeat, identical
    // across worker counts, and carrying no timing or cache metadata.
    let bad_bodies = [
        "{".to_string(),                 // truncated JSON
        r#"{"spec": 3}"#.to_string(),    // wrong type
        "not a spec at all".to_string(), // not a spec string
        r#"{"days": 9000}"#.to_string(), // out-of-range knob
    ];
    let mut canonical: Option<Vec<String>> = None;
    for threads in [1usize, 3] {
        let server = start_server(threads);
        let mut first_pass = Vec::new();
        for round in 0..2 {
            for (i, body) in bad_bodies.iter().enumerate() {
                let (status, response) =
                    send_request(server.local_addr(), "POST", "/v1/place", body.as_bytes())
                        .expect("transport stays up on malformed bodies");
                assert_eq!(status, 400, "body {i}: {response}");
                let parsed = pvfloorplan::json::parse(&response).expect("structured error body");
                assert!(
                    parsed.get("error").and_then(|v| v.as_str()).is_some(),
                    "body {i}: {response}"
                );
                for leak in ["latency", "p50", "p99", "cache", "hit"] {
                    assert!(
                        !response.contains(leak),
                        "error body leaks '{leak}': {response}"
                    );
                }
                if round == 0 {
                    first_pass.push(response);
                } else {
                    assert_eq!(
                        response, first_pass[i],
                        "400 for body {i} changed between repeats at {threads} thread(s)"
                    );
                }
            }
        }
        match &canonical {
            None => canonical = Some(first_pass),
            Some(reference) => assert_eq!(
                reference, &first_pass,
                "400 bodies changed between worker counts"
            ),
        }
        server.shutdown();
    }
}

#[test]
fn responses_are_bit_identical_across_thread_counts_and_arrival_orders() {
    let bodies = request_bodies();
    let mut canonical: Option<BTreeMap<usize, String>> = None;

    for threads in [1usize, 3] {
        let server = start_server(threads);
        let by_request = fire_interleaved(server.local_addr(), &bodies, 4);

        // Within one server: every client, every arrival order, every
        // cache state produced the same bytes per request.
        let mut unique: BTreeMap<usize, String> = BTreeMap::new();
        for (idx, responses) in by_request {
            assert_eq!(responses.len(), 4, "request {idx} answered once per client");
            for response in &responses {
                assert_eq!(
                    *response, responses[0],
                    "request {idx} diverged across clients/orders at {threads} thread(s)"
                );
            }
            unique.insert(idx, responses[0].clone());
        }

        // The repeated entries of the mix are identical requests — their
        // responses must be identical too (cold-vs-warm cannot leak).
        assert_eq!(unique[&0], unique[&4]);
        assert_eq!(unique[&1], unique[&5]);
        assert_eq!(unique[&2], unique[&6]);

        // Across servers: thread count changes nothing.
        match &canonical {
            None => canonical = Some(unique),
            Some(reference) => {
                assert_eq!(
                    reference, &unique,
                    "responses changed between 1 and {threads} worker threads"
                );
            }
        }

        // The warm cache actually fired: the mix repeats sites, so the
        // server must report hits, and the responses parse as placements.
        let (status, stats) = send_request(server.local_addr(), "GET", "/v1/stats", b"").unwrap();
        assert_eq!(status, 200);
        let stats = pvfloorplan::json::parse(&stats).unwrap();
        let hits = stats.get("cache_hits").unwrap().as_number().unwrap();
        let misses = stats.get("cache_misses").unwrap().as_number().unwrap();
        assert!(hits > 0.0, "no cache hits despite repeated sites");
        // Three distinct sites in the mix; racing cold requests for the
        // same site may each record a miss (the benign build race the
        // service documents), so ≥ 3 — but hits must still dominate.
        assert!(misses >= 3.0, "misses {misses}");
        assert_eq!(hits + misses, 28.0, "7 requests x 4 clients");
        server.shutdown();
    }

    // Spot-check the response contents once: a real placement with energy.
    let reference = canonical.expect("at least one server ran");
    let parsed = pvfloorplan::json::parse(&reference[&0]).unwrap();
    assert!(parsed.get("energy_wh").unwrap().as_number().unwrap() > 0.0);
    assert!(!parsed
        .get("modules")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    let explicit = pvfloorplan::json::parse(&reference[&3]).unwrap();
    assert_eq!(explicit.get("series").unwrap().as_number(), Some(2.0));
    assert_eq!(explicit.get("strings").unwrap().as_number(), Some(1.0));
}

/// A real `pvplan route` process under test: the router binary plus its
/// supervised shard workers. Dropping it closes the router's stdin
/// (`--watch-stdin`), which drains the listener and tears the whole
/// worker fleet down via the held-stdin pipes; a kill is the fallback.
struct RouterProc {
    child: Child,
    addr: SocketAddr,
}

impl RouterProc {
    /// Spawns `pvplan route --shards N` rooted at `store_root` (with a
    /// `--trace-log` when given) and waits until the router has bound,
    /// health-checked every worker, and written its port file.
    fn start(
        shards: usize,
        store_root: &std::path::Path,
        trace_log: Option<&std::path::Path>,
    ) -> Self {
        std::fs::create_dir_all(store_root).expect("create store root");
        let port_file = store_root.join("router.port");
        let _ = std::fs::remove_file(&port_file);
        let mut args = vec![
            "route".to_string(),
            "--shards".to_string(),
            shards.to_string(),
            "--profile".to_string(),
            "tiny".to_string(),
            "--threads".to_string(),
            "1".to_string(),
            "--port".to_string(),
            "0".to_string(),
            "--port-file".to_string(),
            port_file.display().to_string(),
            "--store-dir".to_string(),
            store_root.display().to_string(),
            "--watch-stdin".to_string(),
        ];
        if let Some(path) = trace_log {
            args.push("--trace-log".to_string());
            args.push(path.display().to_string());
        }
        let child = Command::new(env!("CARGO_BIN_EXE_pvplan"))
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn pvplan route");
        // The port file appears only after every worker passed its
        // health check, so its presence means the fleet is serving.
        let deadline = Instant::now() + Duration::from_secs(120);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "router did not write its port file in time"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        Self { child, addr }
    }
}

impl Drop for RouterProc {
    fn drop(&mut self) {
        drop(self.child.stdin.take()); // EOF: graceful drain + fleet teardown
        let deadline = Instant::now() + Duration::from_secs(15);
        while Instant::now() < deadline {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn stats_doc(addr: SocketAddr) -> JsonValue {
    let (status, stats) = send_request(addr, "GET", "/v1/stats", b"").expect("stats transport");
    assert_eq!(status, 200, "{stats}");
    pvfloorplan::json::parse(&stats).expect("stats JSON")
}

/// Polls merged stats until `field` reaches at least `want`.
fn wait_for_stat(addr: SocketAddr, field: &str, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let value = stats_doc(addr)
            .get(field)
            .and_then(|v| v.as_number())
            .unwrap_or_else(|| panic!("stats field {field} missing"));
        if value >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "stats field {field} stuck at {value}, wanted >= {want}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn router_shard_count_is_invisible_in_response_bytes() {
    let bodies = request_bodies();
    let bad_bodies = ["{", r#"{"spec": 3}"#, "not a spec at all"];

    // The in-process single server is the reference: a shard fleet of
    // any size must be indistinguishable from it in the bytes.
    let reference_server = start_server(1);
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| post_place(reference_server.local_addr(), b))
        .collect();
    let bad_reference: Vec<(u16, String)> = bad_bodies
        .iter()
        .map(|b| {
            send_request(
                reference_server.local_addr(),
                "POST",
                "/v1/place",
                b.as_bytes(),
            )
            .expect("transport")
        })
        .collect();
    reference_server.shutdown();

    for shards in [1usize, 3] {
        let root = std::env::temp_dir().join(format!(
            "pvroute-e2e-{}-{}shard",
            std::process::id(),
            shards
        ));
        let _ = std::fs::remove_dir_all(&root);
        let router = RouterProc::start(shards, &root, None);

        // Rotated concurrent clients through the proxy: every arrival
        // order, every placement, every cache state — reference bytes.
        let by_request = fire_interleaved(router.addr, &bodies, 3);
        for (idx, responses) in by_request {
            for response in &responses {
                assert_eq!(
                    response, &reference[idx],
                    "request {idx} diverged from the in-process server at {shards} shard(s)"
                );
            }
        }

        // Malformed bodies keep their deterministic 400 bytes through
        // the proxy: the router hashes the raw bytes and lets the owning
        // worker's own error path answer.
        for (bad, (want_status, want_body)) in bad_bodies.iter().zip(&bad_reference) {
            let (status, body) =
                send_request(router.addr, "POST", "/v1/place", bad.as_bytes()).expect("transport");
            assert_eq!(status, *want_status, "{body}");
            assert_eq!(
                &body, want_body,
                "400 bytes changed through the proxy at {shards} shard(s)"
            );
        }

        // The merged stats doc reports the full fleet as healthy.
        let stats = stats_doc(router.addr);
        let up = stats.get("shards_up").and_then(|v| v.as_number());
        assert_eq!(up, Some(shards as f64), "all shards healthy");

        drop(router);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Fires the interleaved mix while a sidecar thread hammers
/// `/v1/metrics` the whole time — the scrape load is concurrent with the
/// placements it must not perturb. Returns the per-request response sets.
fn fire_with_scrapes(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
) -> BTreeMap<usize, Vec<String>> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = AtomicBool::new(false);
    let stop = &stop;
    std::thread::scope(|scope| {
        let scraper = scope.spawn(move || {
            let mut scrapes = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let (status, text) =
                    send_request(addr, "GET", "/v1/metrics", b"").expect("metrics transport");
                assert_eq!(status, 200, "{text}");
                assert!(text.starts_with("# HELP"), "not exposition text: {text}");
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            scrapes
        });
        let by_request = fire_interleaved(addr, bodies, clients);
        stop.store(true, Ordering::Relaxed);
        assert!(scraper.join().expect("scraper thread") > 0, "never scraped");
        by_request
    })
}

/// Asserts a trace log is JSONL whose every event carries a 16-hex id,
/// returning the ids of its `/v1/place` events.
fn place_trace_ids(path: &std::path::Path) -> Vec<String> {
    let logged = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("trace log {} unreadable: {e}", path.display()));
    let mut ids = Vec::new();
    for line in logged.lines().filter(|l| !l.is_empty()) {
        let event = pvfloorplan::json::parse(line)
            .unwrap_or_else(|e| panic!("{}: bad JSONL '{line}': {e}", path.display()));
        let id = event
            .get("trace")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("{}: event without trace id: {line}", path.display()));
        assert_eq!(id.len(), 16, "{}: trace id '{id}'", path.display());
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id}");
        if event.get("target").and_then(|v| v.as_str()) == Some("/v1/place") {
            ids.push(id.to_string());
        }
    }
    ids
}

#[test]
fn observability_leaves_place_bytes_untouched_at_any_worker_or_shard_count() {
    let bodies = request_bodies();

    // The reference: an observability-off server. Everything below —
    // trace logs on, metrics scraped concurrently, workers multiplied,
    // shards multiplied — must reproduce these exact bytes.
    let reference_server = start_server(1);
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| post_place(reference_server.local_addr(), b))
        .collect();
    reference_server.shutdown();

    let dir = std::env::temp_dir().join(format!("pvobs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create obs dir");

    // In-process: 1 vs 3 workers, trace log attached, scrapes in flight.
    for threads in [1usize, 3] {
        let log_path = dir.join(format!("serve-{threads}.trace"));
        let log = pvfloorplan::obs::TraceLog::create(&log_path).expect("create trace log");
        let service =
            Arc::new(PlacementService::new(ServiceConfig::tiny()).with_trace_log(Arc::new(log)));
        let server = Server::bind("127.0.0.1:0", service, Runtime::with_threads(threads), 16)
            .expect("bind ephemeral port");

        let by_request = fire_with_scrapes(server.local_addr(), &bodies, 3);
        for (idx, responses) in by_request {
            for response in &responses {
                assert_eq!(
                    response, &reference[idx],
                    "request {idx}: tracing + scraping changed bytes at {threads} worker(s)"
                );
            }
        }

        // The exposition carries the serving counters for this traffic.
        let (status, metrics) =
            send_request(server.local_addr(), "GET", "/v1/metrics", b"").expect("metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("\npv_place_ok_total 21"), "{metrics}");
        server.shutdown();

        let places = place_trace_ids(&log_path);
        assert_eq!(
            places.len(),
            21,
            "one event per placement (7 bodies x 3 clients)"
        );
    }

    // Through the router: 1 vs 3 shards, router + per-shard trace logs,
    // scrapes hitting the fleet-merged /v1/metrics the whole time.
    for shards in [1usize, 3] {
        let root = dir.join(format!("route-{shards}"));
        let trace = root.join("router.trace");
        let router = RouterProc::start(shards, &root, Some(&trace));

        let by_request = fire_with_scrapes(router.addr, &bodies, 3);
        for (idx, responses) in by_request {
            for response in &responses {
                assert_eq!(
                    response, &reference[idx],
                    "request {idx}: observability changed bytes at {shards} shard(s)"
                );
            }
        }
        let (status, metrics) =
            send_request(router.addr, "GET", "/v1/metrics", b"").expect("metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("\npv_place_ok_total 21"), "{metrics}");
        assert!(
            metrics.contains(&format!("\npv_shards {shards}")),
            "{metrics}"
        );
        drop(router);

        // Trace propagation: every /v1/place event a worker logged uses
        // the id the router minted for that request — the shared id is
        // what joins a request's spans across the process boundary.
        let router_ids = place_trace_ids(&trace);
        assert_eq!(router_ids.len(), 21, "router logged every placement");
        for k in 0..shards {
            let worker_log = std::path::PathBuf::from(format!("{}.shard{k}", trace.display()));
            for id in place_trace_ids(&worker_log) {
                assert!(
                    router_ids.contains(&id),
                    "shard {k} logged trace id {id} the router never minted"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_survives_kill_dash_nine_of_a_worker_and_rehydrates_it() {
    let bodies = request_bodies();
    let root = std::env::temp_dir().join(format!("pvroute-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Tracing stays on through the whole kill/respawn cycle: the bytes
    // below must be observability-blind even across a worker funeral.
    let trace = root.join("router.trace");
    let router = RouterProc::start(2, &root, Some(&trace));

    // Pre-kill baseline, and the shard map this test relies on: with two
    // shards the mix splits (specs 0/1 on one shard, spec 2 on the
    // other), so killing spec 0's owner leaves a live survivor to probe.
    let baseline: Vec<String> = bodies.iter().map(|b| post_place(router.addr, b)).collect();
    let ring = HashRing::new(2);
    let victim = ring.shard_for(place_shard_key(bodies[0].as_bytes()));
    let survivor_body = bodies
        .iter()
        .find(|b| ring.shard_for(place_shard_key(b.as_bytes())) != victim)
        .expect("request mix spans both shards");

    // Wait until every distinct site's snapshot is committed, so the
    // victim's replacement has something to rehydrate from.
    wait_for_stat(router.addr, "store_writes", 3.0);

    // kill -9 the victim worker — no destructors, no goodbye.
    let pids = stats_doc(router.addr)
        .get("shard_pids")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .expect("shard_pids in merged stats");
    let pid = pids
        .get(victim)
        .and_then(JsonValue::as_number)
        .expect("victim pid") as u64;
    let killed = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {pid}");

    // The surviving shard keeps answering immediately (no fleet-wide
    // outage), and the supervisor brings the victim back.
    assert_eq!(&post_place(router.addr, survivor_body), &baseline[2]);
    wait_for_stat(router.addr, "shard_restarts", 1.0);
    wait_for_stat(router.addr, "shards_up", 2.0);

    // Full replay: every response — including the killed shard's sites —
    // is byte-identical to the pre-kill baseline.
    for (body, expected) in bodies.iter().zip(&baseline) {
        assert_eq!(
            &post_place(router.addr, body),
            expected,
            "post-restart bytes diverged from the pre-kill baseline"
        );
    }

    // The restarted worker answered warm from its snapshot partition:
    // the merged stats show store hits, proving rehydration (not a cold
    // re-extraction that happens to match).
    let stats = stats_doc(router.addr);
    let hit_rate = stats.get("store_hit_rate").and_then(|v| v.as_number());
    assert!(
        hit_rate.is_some_and(|r| r > 0.0),
        "store_hit_rate {hit_rate:?} after restart"
    );
    let restarts = stats.get("shard_restarts").and_then(|v| v.as_number());
    assert!(restarts.is_some_and(|r| r >= 1.0), "restarts {restarts:?}");

    // The respawned worker picked its trace log back up: the router's log
    // and both shard logs hold valid post-restart events.
    drop(router);
    for path in [
        trace.clone(),
        std::path::PathBuf::from(format!("{}.shard0", trace.display())),
        std::path::PathBuf::from(format!("{}.shard1", trace.display())),
    ] {
        let logged = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("trace log {} unreadable: {e}", path.display()));
        let events: Vec<_> = logged.lines().filter(|l| !l.is_empty()).collect();
        assert!(!events.is_empty(), "{} logged nothing", path.display());
        for line in events {
            let event = pvfloorplan::json::parse(line)
                .unwrap_or_else(|e| panic!("{}: bad JSONL '{line}': {e}", path.display()));
            assert!(
                event
                    .get("trace")
                    .and_then(|v| v.as_str())
                    .is_some_and(|t| t.len() == 16),
                "{}: event without a trace id: {line}",
                path.display()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
