//! Smoke test of the public prelude: the README/rustdoc quickstart
//! pipeline — `RoofBuilder` → `SolarExtractor` → `greedy_placement` →
//! `EnergyEvaluator` — must run end-to-end using only `prelude::*`
//! imports and produce positive energy on a tiny 4-day clock.

use pvfloorplan::prelude::*;

#[test]
fn quickstart_pipeline_produces_positive_energy() {
    let roof = RoofBuilder::new(Meters::new(10.0), Meters::new(5.0))
        .tilt(Degrees::new(26.0))
        .azimuth(Degrees::new(180.0))
        .obstacle(Obstacle::chimney(
            Meters::new(4.0),
            Meters::new(1.0),
            Meters::new(0.8),
            Meters::new(0.8),
            Meters::new(1.8),
        ))
        .build();

    let clock = SimulationClock::days_at_minutes(4, 60);
    let data = SolarExtractor::new(Site::turin(), clock)
        .seed(42)
        .extract(&roof);

    let config = FloorplanConfig::paper(Topology::new(2, 2).expect("2x2 topology is non-empty"))
        .expect("paper config accepts a 2x2 topology");
    let plan: FloorplanResult = greedy_placement(&data, &config).expect("roof fits 4 modules");
    let report: EnergyReport = EnergyEvaluator::new(&config)
        .evaluate(&data, &plan)
        .expect("evaluation succeeds on the greedy plan");

    // The headline assertion from the quickstart.
    assert!(report.energy.as_wh() > 0.0, "no energy produced");

    // Structural sanity reachable through prelude types alone.
    assert_eq!(plan.placement.len(), 4);
    assert!(report.gross_energy.as_wh() >= report.energy.as_wh());
    assert!(data.valid().count() > 0);
}

#[test]
fn prelude_exposes_both_placers_and_weather() {
    // Every prelude name used here must resolve without reaching into
    // sub-crates: this test pins the facade's public surface.
    let clock = SimulationClock::days_at_minutes(4, 60);
    let samples = WeatherGenerator::new(7).generate(clock);
    assert_eq!(samples.len(), clock.num_steps() as usize);

    let roof = RoofBuilder::new(Meters::new(8.0), Meters::new(4.0)).build();
    let data = SolarExtractor::new(Site::turin(), clock)
        .seed(7)
        .extract(&roof);
    let config = FloorplanConfig::paper(Topology::new(2, 1).unwrap()).unwrap();

    let greedy = greedy_placement(&data, &config).unwrap();
    let traditional = traditional_placement(&data, &config).unwrap();
    let map = SuitabilityMap::compute(&data, &config);

    assert_eq!(greedy.placement.len(), traditional.placement.len());
    // The suitability landscape scores at least every valid anchor.
    assert!(
        map.anchor_scores(config.footprint())
            .iter()
            .any(|s| s.is_finite()),
        "no finite anchor scores"
    );
}
