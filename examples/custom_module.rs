//! Using a custom PV module instead of the paper's PV-MF165EB3.
//!
//! Defines a modern 400 W half-cut module (1.7 x 1.0 m — note the grid
//! pitch must divide the module sides), compares its empirical model
//! against the built-in one, and runs a placement with it.
//!
//! Run: `cargo run --example custom_module --release`

use pvfloorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 400 W module on a 10 cm grid (1.7 m and 1.0 m are not multiples
    // of the paper's 20 cm pitch — the config constructor enforces this).
    let module = EmpiricalModule::custom(
        "Generic 400W half-cut",
        Meters::new(1.7),
        Meters::new(1.0),
        Watts::new(400.0),
        Volts::new(31.0),
        Volts::new(37.0),
        Amperes::new(13.7),
    );

    let g = Irradiance::from_w_per_m2(800.0);
    let t = Celsius::new(20.0);
    let reference = EmpiricalModule::pv_mf165eb3();
    println!(
        "at 800 W/m2, 20 degC ambient: {} -> {:.1} W, {} -> {:.1} W",
        reference.name(),
        reference.power(g, t).as_watts(),
        module.name(),
        module.power(g, t).as_watts()
    );

    let roof = RoofBuilder::new(Meters::new(12.0), Meters::new(6.0))
        .pitch(Meters::new(0.1))
        .tilt(Degrees::new(30.0))
        .obstacle(Obstacle::dormer(
            Meters::new(5.0),
            Meters::new(1.0),
            Meters::new(2.0),
            Meters::new(1.5),
            Meters::new(1.4),
        ))
        .build();
    let clock = SimulationClock::days_at_minutes(30, 60);
    let data = SolarExtractor::new(Site::turin(), clock)
        .seed(3)
        .extract(&roof);

    let config = pvfloorplan::floorplan::FloorplanConfig::new(
        module,
        Meters::new(0.1),
        Topology::new(3, 2)?,
    )?;
    let plan = greedy_placement(&data, &config)?;
    let report = EnergyEvaluator::new(&config).evaluate(&data, &plan)?;
    println!(
        "placed {} x 400 W modules; 30-day energy {:.1} kWh (mismatch {:.2}%)",
        plan.placement.len(),
        report.energy.as_kwh(),
        report.mismatch_fraction() * 100.0
    );
    Ok(())
}
