//! Quickstart: the Fig. 1 story on a toy roof.
//!
//! Places 8 modules on a small roof with an irradiance gradient and shows
//! why the sparse, irregular placement (b) beats the traditional compact
//! block (a).
//!
//! Run: `cargo run --example quickstart --release`

use pvfloorplan::floorplan::render;
use pvfloorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12 x 5 m south-facing roof with a chimney and a tall tree off the
    // west edge: the irradiance field is visibly non-uniform.
    let roof = RoofBuilder::new(Meters::new(12.0), Meters::new(5.0))
        .tilt(Degrees::new(26.0))
        .azimuth(Degrees::new(180.0))
        .obstacle(Obstacle::chimney(
            Meters::new(5.0),
            Meters::new(1.0),
            Meters::new(0.8),
            Meters::new(0.8),
            Meters::new(1.8),
        ))
        .obstacle(Obstacle::off_roof_block(
            Meters::new(0.0),
            Meters::new(0.0),
            Meters::new(0.4),
            Meters::new(5.0),
            Meters::new(4.0),
        ))
        .build();

    // One simulated month at hourly resolution keeps the example snappy;
    // swap in `SimulationClock::paper()` for the full-year 15-minute run.
    let clock = SimulationClock::days_at_minutes(30, 60);
    let data = SolarExtractor::new(Site::turin(), clock)
        .seed(42)
        .extract(&roof);

    // 8 modules as 2 series strings of 4 (the paper's Fig. 1 setup).
    let config = FloorplanConfig::paper(Topology::new(4, 2)?)?;
    let evaluator = EnergyEvaluator::new(&config);

    let suitability = SuitabilityMap::compute(&data, &config);
    println!("suitability map (bright = better, x = unusable):");
    println!("{}", render::ascii_heatmap(suitability.scores(), 60));

    let compact = traditional_placement(&data, &config)?;
    let sparse = greedy_placement(&data, &config)?;
    let e_compact = evaluator.evaluate(&data, &compact)?;
    let e_sparse = evaluator.evaluate(&data, &sparse)?;

    println!(
        "(a) traditional compact block: {:.1} kWh",
        e_compact.energy.as_kwh()
    );
    println!("{}", render::ascii_placement(&compact, data.valid(), 60));
    println!(
        "(b) proposed irregular placement: {:.1} kWh ({:+.1}%), extra wire {:.1} m",
        e_sparse.energy.as_kwh(),
        e_sparse.energy.percent_gain_over(e_compact.energy),
        e_sparse.extra_wire.as_meters()
    );
    println!("{}", render::ascii_placement(&sparse, data.valid(), 60));
    Ok(())
}
