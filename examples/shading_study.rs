//! Shading anatomy: how one obstacle reshapes the suitability landscape
//! and how the series bottleneck punishes a careless string.
//!
//! Run: `cargo run --example shading_study --release`

use pvfloorplan::floorplan::render;
use pvfloorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let roof = RoofBuilder::new(Meters::new(10.0), Meters::new(5.0))
        .tilt(Degrees::new(26.0))
        .azimuth(Degrees::new(180.0))
        .obstacle(Obstacle::hvac_unit(
            Meters::new(4.0),
            Meters::new(3.4),
            Meters::new(2.4),
        ))
        .build();
    let clock = SimulationClock::days_at_minutes(60, 60);
    let data = SolarExtractor::new(Site::turin(), clock)
        .seed(7)
        .extract(&roof);

    // Shadow frequency around the HVAC unit.
    println!("beam-shadow fraction (sampled cells up-slope of the unit):");
    for dy_m in [0.5, 1.0, 2.0, 3.0] {
        let cell = CellCoord::new(24, ((3.4 - dy_m) / 0.2) as usize);
        println!(
            "  {:.1} m up-slope: shadowed {:.0}% of beam hours, p75-based score {:.0}",
            dy_m,
            data.shadow_fraction(cell) * 100.0,
            {
                let config = FloorplanConfig::paper(Topology::new(2, 1)?)?;
                SuitabilityMap::compute(&data, &config).score(cell)
            }
        );
    }

    let config = FloorplanConfig::paper(Topology::new(2, 1)?)?;
    let map = SuitabilityMap::compute(&data, &config);
    println!("\nsuitability landscape:");
    println!("{}", render::ascii_heatmap(map.scores(), 50));

    // A deliberate bad string: one module in the shade pocket.
    let evaluator = EnergyEvaluator::new(&config);
    let mut bad = Placement::new(data.dims(), config.footprint());
    bad.try_place(CellCoord::new(2, 2), data.valid())?;
    bad.try_place(CellCoord::new(22, 8), data.valid())?; // shade pocket
    let bad_plan = pvfloorplan::floorplan::FloorplanResult {
        placement: bad,
        string_of: vec![0, 0],
        mean_anchor_score: f64::NAN,
    };
    let e_bad = evaluator.evaluate(&data, &bad_plan)?;

    let good_plan = greedy_placement(&data, &config)?;
    let e_good = evaluator.evaluate(&data, &good_plan)?;
    println!(
        "series string with one shaded module: {:.1} kWh (mismatch {:.1}%)",
        e_bad.energy.as_kwh(),
        e_bad.mismatch_fraction() * 100.0
    );
    println!(
        "greedy-placed string:                 {:.1} kWh (mismatch {:.1}%)",
        e_good.energy.as_kwh(),
        e_good.mismatch_fraction() * 100.0
    );
    Ok(())
}
