//! The paper's three-roof case study (Sec. V) at preview resolution.
//!
//! Builds the synthetic reconstructions of the three industrial roofs,
//! runs traditional-vs-proposed for N = 16, and prints the comparison —
//! a fast preview of the full Table I harness
//! (`cargo run -p pv-bench --bin table1 --release`).
//!
//! Run: `cargo run --example industrial_roofs --release`

use pvfloorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Quarter-year at hourly steps: enough to see the spatial structure.
    let clock = SimulationClock::days_at_minutes(91, 60);
    let config = FloorplanConfig::paper(Topology::new(8, 2)?)?;
    let evaluator = EnergyEvaluator::new(&config);

    println!("three-roof case study, N = 16 (2 strings of 8), 91 winter days");
    println!("(winter-quarter preview exaggerates shading gains; see table1 for the year)\n");
    println!(
        "{:<8} {:>7} {:>14} {:>14} {:>8}",
        "roof", "Ng", "compact kWh", "proposed kWh", "gain"
    );
    for scenario in paper_roofs() {
        let data = SolarExtractor::new(Site::turin(), clock)
            .seed(2018)
            .extract(&scenario.dsm);
        let map = SuitabilityMap::compute(&data, &config);
        let compact = pvfloorplan::floorplan::traditional_placement_with_map(&data, &config, &map)?;
        let proposed = pvfloorplan::floorplan::greedy_placement_with_map(&data, &config, &map)?;
        let e_c = evaluator.evaluate(&data, &compact)?;
        let e_p = evaluator.evaluate(&data, &proposed)?;
        println!(
            "{:<8} {:>7} {:>14.1} {:>14.1} {:>+7.1}%",
            scenario.name(),
            data.valid().count(),
            e_c.energy.as_kwh(),
            e_p.energy.as_kwh(),
            e_p.energy.percent_gain_over(e_c.energy)
        );
    }
    println!("\nfull-year Table I: cargo run -p pv-bench --bin table1 --release");
    Ok(())
}
