//! Weather-sensitivity study: does the optimized placement's advantage
//! survive across weather years?
//!
//! The placement is computed once from one weather year (as an installer
//! would), then evaluated against several other synthetic years. The gain
//! over the compact baseline should persist — the spatial structure it
//! exploits (shadows, surface texture) is weather-independent.
//!
//! Run: `cargo run --example weather_sensitivity --release`

use pvfloorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let roof = RoofBuilder::new(Meters::new(16.0), Meters::new(6.0))
        .tilt(Degrees::new(26.0))
        .azimuth(Degrees::new(195.0))
        .undulation(Degrees::new(5.0), Meters::new(4.0), 9)
        .obstacle(Obstacle::hvac_unit(
            Meters::new(7.0),
            Meters::new(4.4),
            Meters::new(2.2),
        ))
        .obstacle(Obstacle::chimney(
            Meters::new(12.0),
            Meters::new(1.0),
            Meters::new(0.8),
            Meters::new(0.8),
            Meters::new(1.8),
        ))
        .build();

    let clock = SimulationClock::days_at_minutes(60, 60);
    let config = FloorplanConfig::paper(Topology::new(4, 2)?)?;
    let evaluator = EnergyEvaluator::new(&config);

    // Plan on the design year...
    let design_year = SolarExtractor::new(Site::turin(), clock)
        .seed(1)
        .extract(&roof);
    let proposed = greedy_placement(&design_year, &config)?;
    let compact = traditional_placement(&design_year, &config)?;

    // ...evaluate against other years.
    println!("placement planned on seed 1, evaluated across weather years:\n");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "seed", "compact kWh", "proposed kWh", "gain"
    );
    for seed in 1..=6 {
        let year = SolarExtractor::new(Site::turin(), clock)
            .seed(seed)
            .extract(&roof);
        let e_c = evaluator.evaluate(&year, &compact)?;
        let e_p = evaluator.evaluate(&year, &proposed)?;
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>+7.1}%",
            seed,
            e_c.energy.as_kwh(),
            e_p.energy.as_kwh(),
            e_p.energy.percent_gain_over(e_c.energy)
        );
    }
    Ok(())
}
